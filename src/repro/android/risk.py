"""Static permission-risk assessment (paper Section III-A).

Before any packet is captured, the manifest alone already tells a user
something: "727 applications (61%) require the INTERNET and some
combination of sensitive information permissions.  Those applications can
access sensitive resources on the device and send [them] using the
network feature, all without user confirmation."

This module turns that observation into a ranked assessment: each
application gets a risk level from its permission combination, and a
population can be summarized the way Table I does.  The flow-control
example uses it to decide which applications deserve a stricter default
policy before any signature has ever fired.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.android.app import Application
from repro.android.permissions import (
    Manifest,
    PermissionCategory,
    is_internet_only,
)


class RiskLevel(enum.Enum):
    """Ordered static risk classes."""

    NONE = 0  # no network: nothing can leave the device
    LOW = 1  # network only: can talk, has nothing sensitive to say
    MODERATE = 2  # network + one sensitive category
    HIGH = 3  # network + two sensitive categories
    CRITICAL = 4  # network + all three sensitive categories

    def __lt__(self, other: "RiskLevel") -> bool:
        return self.value < other.value

    def __le__(self, other: "RiskLevel") -> bool:
        return self.value <= other.value


#: The sensitive categories of Section III-A.
_SENSITIVE = (
    PermissionCategory.LOCATION,
    PermissionCategory.PHONE_STATE,
    PermissionCategory.CONTACTS,
)


def risk_level(manifest: Manifest) -> RiskLevel:
    """The static risk class of one manifest."""
    if not manifest.has_internet:
        return RiskLevel.NONE
    sensitive_count = sum(1 for category in _SENSITIVE if manifest.holds_category(category))
    if sensitive_count == 0:
        return RiskLevel.LOW
    if sensitive_count == 1:
        return RiskLevel.MODERATE
    if sensitive_count == 2:
        return RiskLevel.HIGH
    return RiskLevel.CRITICAL


@dataclass(frozen=True, slots=True)
class RiskAssessment:
    """Risk verdict for one application."""

    package: str
    level: RiskLevel
    reasons: tuple[str, ...]

    @property
    def is_dangerous(self) -> bool:
        """The paper's 61% class: can both read and transmit."""
        return self.level >= RiskLevel.MODERATE


def assess(app: Application) -> RiskAssessment:
    """Assess one application with human-readable reasons."""
    manifest = app.manifest
    level = risk_level(manifest)
    reasons: list[str] = []
    if manifest.has_internet:
        reasons.append("can transmit over the network (INTERNET)")
    for category, label in (
        (PermissionCategory.PHONE_STATE, "can read IMEI/IMSI/SIM serial/carrier (READ_PHONE_STATE)"),
        (PermissionCategory.LOCATION, "can read location (ACCESS_*_LOCATION)"),
        (PermissionCategory.CONTACTS, "can read the address book (READ_CONTACTS)"),
    ):
        if manifest.holds_category(category):
            reasons.append(label)
    if app.ad_modules:
        names = ", ".join(sorted(s.name for s in app.ad_modules))
        reasons.append(f"embeds advertisement modules: {names}")
    if is_internet_only(manifest):
        reasons.append("requests no permission beyond INTERNET")
    return RiskAssessment(package=app.package, level=level, reasons=tuple(reasons))


def rank_population(apps: list[Application]) -> list[RiskAssessment]:
    """All assessments, most dangerous first (stable by package name)."""
    assessments = [assess(app) for app in apps]
    assessments.sort(key=lambda a: (-a.level.value, a.package))
    return assessments


def summarize(apps: list[Application]) -> dict[RiskLevel, int]:
    """Population histogram by risk level (the Table I view, condensed)."""
    histogram: dict[RiskLevel, int] = {level: 0 for level in RiskLevel}
    for app in apps:
        histogram[risk_level(app.manifest)] += 1
    return histogram
