"""Application-population sampling (the paper's 1,188-app corpus).

:class:`AppMarket` builds a population whose *permission mix* reproduces
Table I exactly (scaled when a smaller corpus is requested) and whose
*service adoption* hits the Table II "# Apps" targets in expectation.
Structural features the paper reports are modelled explicitly:

- ~7% of applications contact a single destination (Fig 2 low end) —
  "loner" utility apps that only talk to their own backend;
- one application embeds a browser and reaches 84 destinations (Fig 2
  maximum);
- a small fraction of developers send identifiers to their *own* servers,
  which is why Table III counts far more leak destinations (75-94) than
  there are ad networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random

from repro.android.admodules import AD_SERVICES
from repro.android.app import Application
from repro.android.permissions import (
    ACCESS_FINE_LOCATION,
    ACCESS_NETWORK_STATE,
    GET_ACCOUNTS,
    INTERNET,
    Manifest,
    Permission,
    READ_CONTACTS,
    READ_PHONE_STATE,
    VIBRATE,
    WAKE_LOCK,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.services import Service
from repro.android.webapi import WEB_SERVICES, make_browser_service, make_own_backend
from repro.errors import SimulationError
from repro.sensitive.identifiers import IdentifierKind

#: The reference population size (the paper's corpus).
REFERENCE_APP_COUNT = 1188

#: Table I rows (plus the combinations the table elides, reconstructed so
#: the published 25% INTERNET-only / 61% dangerous proportions hold):
#: (LOCATION, PHONE_STATE, CONTACTS) -> count out of 1,188.
PERMISSION_ROWS: tuple[tuple[tuple[bool, bool, bool], int], ...] = (
    ((False, False, False), 302),  # INTERNET only
    ((True, False, False), 329),  # + LOCATION
    ((True, True, False), 153),  # + LOCATION + PHONE_STATE
    ((False, True, False), 148),  # + PHONE_STATE
    ((True, True, True), 23),  # all four
    ((False, False, True), 51),  # + CONTACTS      (not in the table)
    ((False, True, True), 23),  # + PHONE + CONTACTS (not in the table)
)
#: Apps with INTERNET plus only benign permissions (1,188 minus the rows).
BENIGN_EXTRA_COUNT = REFERENCE_APP_COUNT - sum(count for __, count in PERMISSION_ROWS)

_BENIGN_POOL: tuple[Permission, ...] = (
    ACCESS_NETWORK_STATE,
    VIBRATE,
    WAKE_LOCK,
    WRITE_EXTERNAL_STORAGE,
    GET_ACCOUNTS,
)

_NAME_STEMS: tuple[str, ...] = (
    "puzzle", "camera", "weather", "manga", "recipe", "train", "news", "battery",
    "alarm", "quiz", "diary", "coupon", "radio", "scanner", "wallpaper", "keyboard",
    "horoscope", "fitness", "translate", "memo", "flashlight", "karaoke", "sns",
    "racing", "mahjong", "pachinko", "stickers", "antivirus", "browserlite", "calc",
)

_CATEGORIES: tuple[str, ...] = (
    "games", "entertainment", "tools", "lifestyle", "news", "social", "travel",
)


@dataclass(frozen=True, slots=True)
class MarketConfig:
    """Population-shape knobs.

    :param n_apps: population size; service adoption and permission rows
        scale proportionally from the 1,188 reference.
    :param loner_fraction: share of apps with exactly one destination.
    :param leaky_own_fraction: share of apps whose own backend receives an
        identifier.
    :param browser_app_count: apps embedding a free-roaming browser.
    :param browser_site_range: how many sites a browser app visits.
    :param extra_own_host_chance: chance a non-loner app has its own
        backend at all.
    """

    n_apps: int = REFERENCE_APP_COUNT
    loner_fraction: float = 0.035
    leaky_own_fraction: float = 0.09
    browser_app_count: int = 1
    browser_site_range: tuple[int, int] = (74, 82)
    extra_own_host_chance: float = 1.0

    def __post_init__(self) -> None:
        if self.n_apps < 1:
            raise SimulationError("n_apps must be positive")
        if not 0.0 <= self.loner_fraction < 1.0:
            raise SimulationError("loner_fraction must be in [0, 1)")


class AppMarket:
    """Builds the application population.

    :param config: population shape (defaults to the paper's corpus).
    :param seed: RNG seed; the same seed yields the same population.
    """

    def __init__(self, config: MarketConfig | None = None, seed: int = 0) -> None:
        self.config = config or MarketConfig()
        self.seed = seed

    def build(self) -> list[Application]:
        """Sample the full population."""
        rng = Random(self.seed)
        n = self.config.n_apps
        manifests = self._manifests(rng, n)
        apps = [
            Application(
                package=self._package_name(i, rng),
                manifest=manifests[i],
                category=rng.choice(_CATEGORIES),
            )
            for i in range(n)
        ]
        self._assign_structure(apps, rng)
        return apps

    # -- permission mix (Table I) ---------------------------------------------

    def _manifests(self, rng: Random, n: int) -> list[Manifest]:
        scale = n / REFERENCE_APP_COUNT
        rows: list[tuple[bool, bool, bool]] = []
        for flags, count in PERMISSION_ROWS:
            rows.extend([flags] * max(0, round(count * scale)))
        while len(rows) < n:
            rows.append((False, False, False))
        del rows[n:]
        rng.shuffle(rows)
        manifests: list[Manifest] = []
        benign_budget = round(BENIGN_EXTRA_COUNT * scale)
        for i, (location, phone, contacts) in enumerate(rows):
            permissions: set[Permission] = {INTERNET}
            if location:
                permissions.add(ACCESS_FINE_LOCATION)
            if phone:
                permissions.add(READ_PHONE_STATE)
            if contacts:
                permissions.add(READ_CONTACTS)
            # The INTERNET-only surplus beyond Table I's 302 carries benign
            # extras (so it does not inflate the strict INTERNET-only row);
            # the remaining plain rows stay exactly {INTERNET}.
            is_plain = not (location or phone or contacts)
            if is_plain:
                if benign_budget > 0:
                    permissions.add(rng.choice(_BENIGN_POOL))
                    benign_budget -= 1
            else:
                for permission in _BENIGN_POOL:
                    if rng.random() < 0.25:
                        permissions.add(permission)
            manifests.append(Manifest(package=f"pending{i}", permissions=frozenset(permissions)))
        return manifests

    # -- structure: services, backends, browsers -------------------------------

    def _assign_structure(self, apps: list[Application], rng: Random) -> None:
        n = len(apps)
        scale = n / REFERENCE_APP_COUNT
        indices = list(range(n))
        rng.shuffle(indices)
        n_loners = round(self.config.loner_fraction * n)
        loners = set(indices[:n_loners])
        browser_apps = set(indices[n_loners : n_loners + self.config.browser_app_count])

        # Shared-service adoption.  Apps have lognormal "integration
        # appetite" weights, so popular feature-heavy apps embed many
        # services — that correlation is what gives Fig 2 its heavy tail
        # (10% of the paper's apps exceed 16 destinations).  Services whose
        # wire format reads phone-state-gated identifiers are biased toward
        # apps declaring READ_PHONE_STATE: real SDK integration guides
        # require the permission, so developers who embed them declare it.
        eligible = [i for i in range(n) if i not in loners]
        appetite = {i: math.exp(rng.gauss(0.0, 1.05)) for i in eligible}
        shared_specs = list(AD_SERVICES) + list(WEB_SERVICES)
        for spec in shared_specs:
            target = min(len(eligible), max(1, round(spec.adoption_target * scale)))
            service = Service(spec)
            weights: list[float] = []
            for i in eligible:
                weight = appetite[i]
                if _wants_phone_state(spec) and apps[i].manifest.holds(READ_PHONE_STATE):
                    weight *= 8.0
                weights.append(weight)
            for i in _weighted_sample(rng, eligible, weights, target):
                apps[i].services.append(service)

        # Own backends and embedded browsers.
        browser_site_counter = 0
        for i, app in enumerate(apps):
            # Fix the placeholder manifest package to the real name.
            app.manifest = Manifest(package=app.package, permissions=app.manifest.permissions)
            if i in loners:
                app.own_services.append(_single_host_backend(app.package, rng))
                continue
            if rng.random() < self.config.extra_own_host_chance:
                leaky = rng.random() < self.config.leaky_own_fraction
                app.own_services.append(make_own_backend(app.package, rng, leaky=leaky))
            if i in browser_apps:
                low, high = self.config.browser_site_range
                for __ in range(rng.randint(low, high)):
                    app.browser_services.append(make_browser_service(browser_site_counter, rng))
                    browser_site_counter += 1

    def _package_name(self, index: int, rng: Random) -> str:
        # Diverse reverse-domain prefixes, as on the real Play store — a
        # uniform prefix would itself become an invariant token shared by
        # every packet that transmits the package name.
        prefix = rng.choice(("jp.co", "jp.ne", "com", "net", "org", "mobi", "air.jp"))
        developer = rng.choice(("soft", "labo", "studio", "works", "apps", "game", "dev"))
        stem = _NAME_STEMS[index % len(_NAME_STEMS)]
        return f"{prefix}.{developer}{index:04d}.{stem}"


#: Identifier kinds readable only with READ_PHONE_STATE.
_PHONE_GATED = {IdentifierKind.IMEI, IdentifierKind.IMSI, IdentifierKind.SIM_SERIAL, IdentifierKind.CARRIER}


def _wants_phone_state(spec) -> bool:
    """Whether any template of a service reads a phone-state identifier."""
    for template in spec.templates:
        for params in (template.query, template.body, template.cookies):
            for param in params:
                if param.identifier in _PHONE_GATED:
                    return True
    return False


def _weighted_sample(rng: Random, population: list[int], weights: list[float], k: int) -> list[int]:
    """``k`` distinct items sampled with probability proportional to weight."""
    chosen: list[int] = []
    items = list(population)
    current = list(weights)
    for __ in range(min(k, len(items))):
        total = sum(current)
        point = rng.random() * total
        cumulative = 0.0
        picked = len(items) - 1
        for idx, weight in enumerate(current):
            cumulative += weight
            if point <= cumulative:
                picked = idx
                break
        chosen.append(items.pop(picked))
        current.pop(picked)
    return chosen


def _single_host_backend(package: str, rng: Random) -> Service:
    """A one-host backend for loner apps (forces exactly one destination)."""
    backend = make_own_backend(package, rng, leaky=False)
    if len(backend.spec.hosts) == 1:
        return backend
    # Rebuild with only the primary host and its templates.
    from repro.android.services import ServiceSpec  # local import to avoid cycle noise

    spec = backend.spec
    templates = tuple(t for t in spec.templates if t.host_index == 0)
    single = ServiceSpec(
        name=spec.name,
        category=spec.category,
        hosts=spec.hosts[:1],
        ip_base=spec.ip_base,
        ip_prefix=spec.ip_prefix,
        templates=templates,
        adoption_target=spec.adoption_target,
        packets_per_app=spec.packets_per_app,
    )
    return Service(single)
