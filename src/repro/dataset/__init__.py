"""Trace containers, corpus statistics, and dataset splits.

- :class:`repro.dataset.trace.Trace` — an ordered packet collection with
  JSONL persistence,
- :mod:`repro.dataset.stats` — the analyses behind Tables I-III and Fig 2,
- :mod:`repro.dataset.split` — the suspicious/normal split and sampling
  used by the Fig 4 experiment.
"""

from repro.dataset.split import sample_packets, split_by_sensitivity
from repro.dataset.stats import (
    DestinationRow,
    SensitiveRow,
    destination_fanout,
    destination_table,
    fanout_summary,
    sensitive_table,
)
from repro.dataset.redact import TraceRedactor
from repro.dataset.trace import Trace

__all__ = [
    "Trace",
    "TraceRedactor",
    "destination_table",
    "DestinationRow",
    "sensitive_table",
    "SensitiveRow",
    "destination_fanout",
    "fanout_summary",
    "split_by_sensitivity",
    "sample_packets",
]
