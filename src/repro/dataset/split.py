"""Suspicious/normal split and sampling (paper Section V-A).

"We manually separated the dataset into a suspicious group and a normal
group ... We selected N HTTP packets at random out of the suspicious group
for signature generation."  Splitting delegates to the payload check;
sampling is seeded and without replacement.
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.dataset.trace import Trace
from repro.errors import DatasetError
from repro.http.packet import HttpPacket
from repro.sensitive.payload_check import PayloadCheck


def split_by_sensitivity(trace: Trace, check: PayloadCheck) -> tuple[Trace, Trace]:
    """Partition a trace into ``(suspicious, normal)`` traces."""
    suspicious, normal = check.split(trace)
    return Trace(suspicious), Trace(normal)


def sample_packets(
    packets: Sequence[HttpPacket], n: int, seed: int = 0
) -> list[HttpPacket]:
    """``n`` distinct packets sampled uniformly without replacement.

    :raises DatasetError: when ``n`` exceeds the population size.
    """
    if n < 0:
        raise DatasetError(f"sample size must be non-negative, got {n}")
    if n > len(packets):
        raise DatasetError(f"cannot sample {n} of {len(packets)} packets")
    rng = Random(seed)
    return rng.sample(list(packets), n)


def holdout_split(
    packets: Sequence[HttpPacket], fraction: float, seed: int = 0
) -> tuple[list[HttpPacket], list[HttpPacket]]:
    """Random ``(train, held-out)`` split by fraction.

    Used by extension experiments (cross-validation of signature quality);
    the paper itself re-applies signatures to the full dataset.
    """
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be within [0, 1], got {fraction}")
    shuffled = list(packets)
    Random(seed).shuffle(shuffled)
    cut = round(len(shuffled) * fraction)
    return shuffled[:cut], shuffled[cut:]
