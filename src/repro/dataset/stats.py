"""Corpus statistics: the analyses behind Tables I-III and Figure 2.

Each function consumes a :class:`~repro.dataset.trace.Trace` (plus the
payload check where sensitivity is involved) and returns plain data rows
that :mod:`repro.eval.report` renders in the paper's table formats.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.dataset.trace import Trace
from repro.sensitive.payload_check import PayloadCheck


@dataclass(frozen=True, slots=True)
class DestinationRow:
    """One Table II row: a destination domain's packet and app mass."""

    domain: str
    packets: int
    apps: int


def destination_table(trace: Trace, *, min_apps: int = 1) -> list[DestinationRow]:
    """Table II: packets and distinct apps per registered domain.

    Rows are ordered by descending app count then packet count, the
    ordering the paper's table uses.
    """
    rows: list[DestinationRow] = []
    for domain, packets in trace.by_domain().items():
        apps = len({p.app_id for p in packets})
        if apps >= min_apps:
            rows.append(DestinationRow(domain=domain, packets=len(packets), apps=apps))
    rows.sort(key=lambda r: (-r.apps, -r.packets, r.domain))
    return rows


@dataclass(frozen=True, slots=True)
class SensitiveRow:
    """One Table III row: an identifier type's leak footprint."""

    label: str
    packets: int
    apps: int
    destinations: int


def sensitive_table(trace: Trace, check: PayloadCheck) -> list[SensitiveRow]:
    """Table III: per identifier (and transform), the number of packets,
    apps, and destination domains touched by that leak."""
    packets_by_label: dict[str, int] = {}
    apps_by_label: dict[str, set[str]] = {}
    domains_by_label: dict[str, set[str]] = {}
    for packet in trace:
        labels = check.leak_labels(packet)
        for label in labels:
            packets_by_label[label] = packets_by_label.get(label, 0) + 1
            apps_by_label.setdefault(label, set()).add(packet.app_id)
            domains_by_label.setdefault(label, set()).add(
                packet.destination.registered_domain
            )
    rows = [
        SensitiveRow(
            label=label,
            packets=packets_by_label[label],
            apps=len(apps_by_label[label]),
            destinations=len(domains_by_label[label]),
        )
        for label in packets_by_label
    ]
    rows.sort(key=lambda r: r.label)
    return rows


def destination_fanout(trace: Trace) -> dict[str, int]:
    """Per app, the number of distinct HTTP host destinations (Fig 2 input)."""
    return {app: len({p.host for p in packets}) for app, packets in trace.by_app().items()}


@dataclass(frozen=True, slots=True)
class FanoutSummary:
    """The Fig 2 headline numbers."""

    n_apps: int
    mean: float
    max: int
    single_destination: int  # apps with exactly 1 destination
    up_to_10: int
    up_to_16: int

    @property
    def single_fraction(self) -> float:
        return self.single_destination / self.n_apps if self.n_apps else 0.0

    @property
    def up_to_10_fraction(self) -> float:
        return self.up_to_10 / self.n_apps if self.n_apps else 0.0

    @property
    def up_to_16_fraction(self) -> float:
        return self.up_to_16 / self.n_apps if self.n_apps else 0.0


def fanout_summary(trace: Trace) -> FanoutSummary:
    """Fig 2 summary: mean/max destination counts and CDF landmarks
    (the paper: 7% one destination, 74% <= 10, 90% <= 16, mean 7.9, max 84).
    """
    counts = list(destination_fanout(trace).values())
    if not counts:
        return FanoutSummary(0, 0.0, 0, 0, 0, 0)
    return FanoutSummary(
        n_apps=len(counts),
        mean=statistics.fmean(counts),
        max=max(counts),
        single_destination=sum(1 for c in counts if c == 1),
        up_to_10=sum(1 for c in counts if c <= 10),
        up_to_16=sum(1 for c in counts if c <= 16),
    )


def fanout_cdf(trace: Trace) -> list[tuple[int, float]]:
    """The full cumulative distribution: (destination count, fraction of
    apps with at most that many destinations) — the Fig 2 curve."""
    counts = sorted(destination_fanout(trace).values())
    if not counts:
        return []
    n = len(counts)
    points: list[tuple[int, float]] = []
    for threshold in range(1, counts[-1] + 1):
        covered = sum(1 for c in counts if c <= threshold)
        points.append((threshold, covered / n))
    return points
