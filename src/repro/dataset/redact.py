"""Trace redaction: share captures without re-leaking the identifiers.

A captured trace *is* a privacy liability — every sensitive packet carries
the device's identifiers (that is the point).  Publishing a research
dataset, or shipping traces from user devices to the signature server,
requires replacing each identifier spelling with a stable placeholder
first.  Redaction is consistent (the same value maps to the same
placeholder everywhere), so clustering structure and invariant-token
extraction still work on redacted traces — placeholders are just as
invariant as the values they replace.
"""

from __future__ import annotations

from repro.dataset.trace import Trace
from repro.http.packet import HttpPacket
from repro.http.parser import parse_request
from repro.sensitive.identifiers import DeviceIdentity
from repro.sensitive.payload_check import PayloadCheck


def _placeholder(label: str, index: int) -> str:
    """A stable, shape-preserving-ish placeholder token."""
    slug = label.replace(" ", "_")
    return f"REDACTED_{slug}_{index:02d}"


class TraceRedactor:
    """Replaces every on-wire spelling of a device's identifiers.

    :param identity: whose identifiers to scrub.

    The redactor reuses the payload check's spelling table, so whatever
    the labeler can find, the redactor can remove — by construction a
    redacted trace contains zero payload-check findings.
    """

    def __init__(self, identity: DeviceIdentity) -> None:
        self._check = PayloadCheck(identity)
        # Build spelling -> placeholder, longest spellings first so a
        # percent-encoded spelling is replaced before its embedded plain
        # form could split it.
        spellings: dict[str, str] = {}
        counter: dict[str, int] = {}
        for kind, transform, spelling in self._check._table:
            label = kind.value if transform.value == "PLAIN" else f"{kind.value}_{transform.value}"
            index = counter.setdefault(label, 0)
            if spelling not in spellings:
                spellings[spelling] = _placeholder(label, index)
                counter[label] = index + 1
        self._replacements = sorted(spellings.items(), key=lambda kv: -len(kv[0]))

    def redact_text(self, text: str) -> str:
        """All identifier spellings replaced by placeholders."""
        for spelling, placeholder in self._replacements:
            if spelling in text:
                text = text.replace(spelling, placeholder)
        return text

    def redact_packet(self, packet: HttpPacket) -> HttpPacket:
        """A redacted copy of one packet (original is untouched)."""
        raw = packet.wire_bytes().decode("latin-1")
        cleaned = self.redact_text(raw)
        request = parse_request(cleaned.encode("latin-1"))
        return HttpPacket(
            destination=packet.destination,
            request=request,
            app_id=packet.app_id,
            timestamp=packet.timestamp,
            meta=dict(packet.meta),
        )

    def redact_trace(self, trace: Trace) -> Trace:
        """A fully redacted copy of a trace."""
        return Trace(self.redact_packet(packet) for packet in trace)

    def verify_clean(self, trace: Trace) -> bool:
        """Whether no identifier spelling survives anywhere in the trace."""
        return not any(self._check.is_sensitive(packet) for packet in trace)
