"""The trace: an ordered collection of captured packets.

A :class:`Trace` is what the collection server in Fig 3(a) ingests.  It
persists as JSON Lines (one packet per line) so multi-session captures can
be concatenated with ``cat``, and it offers the filtered views the
analysis code needs.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import DatasetError
from repro.http.packet import HttpPacket


def _open_text(path: Path, mode: str):
    """Open plain or gzip-compressed text based on the file suffix."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class Trace:
    """An ordered, indexable packet collection.

    :param packets: the packets, usually in capture order.
    """

    def __init__(self, packets: Iterable[HttpPacket] = ()) -> None:
        self._packets: list[HttpPacket] = list(packets)

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[HttpPacket]:
        return iter(self._packets)

    def __getitem__(self, index: int) -> HttpPacket:
        return self._packets[index]

    def append(self, packet: HttpPacket) -> None:
        self._packets.append(packet)

    def extend(self, packets: Iterable[HttpPacket]) -> None:
        self._packets.extend(packets)

    @property
    def packets(self) -> list[HttpPacket]:
        """The underlying list (not a copy; treat as read-only)."""
        return self._packets

    # -- views -------------------------------------------------------------------

    def filter(self, predicate: Callable[[HttpPacket], bool]) -> "Trace":
        """A new trace with only the packets satisfying ``predicate``."""
        return Trace(p for p in self._packets if predicate(p))

    def by_app(self) -> dict[str, list[HttpPacket]]:
        """Packets grouped by sending application."""
        groups: dict[str, list[HttpPacket]] = {}
        for packet in self._packets:
            groups.setdefault(packet.app_id, []).append(packet)
        return groups

    def by_domain(self) -> dict[str, list[HttpPacket]]:
        """Packets grouped by destination registered domain."""
        groups: dict[str, list[HttpPacket]] = {}
        for packet in self._packets:
            groups.setdefault(packet.destination.registered_domain, []).append(packet)
        return groups

    def apps(self) -> set[str]:
        return {p.app_id for p in self._packets}

    def hosts(self) -> set[str]:
        return {p.host for p in self._packets}

    # -- persistence --------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """Write one JSON object per line (gzip when the path ends ``.gz``)."""
        with _open_text(Path(path), "w") as handle:
            for packet in self._packets:
                handle.write(json.dumps(packet.to_dict(), sort_keys=True))
                handle.write("\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save_jsonl` (``.gz`` transparent).

        :raises DatasetError: on malformed lines, with the line number.
        """
        packets: list[HttpPacket] = []
        with _open_text(Path(path), "r") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    packets.append(HttpPacket.from_dict(json.loads(line)))
                except (json.JSONDecodeError, Exception) as exc:  # noqa: BLE001
                    raise DatasetError(f"bad trace record at line {line_number}: {exc}") from exc
        return cls(packets)
