"""TCP port utilities and the paper's boolean port comparison.

The destination distance treats port numbers as an all-or-nothing signal:
"The distance between port numbers is a Boolean (matching or not)."  The
registry of well-known service ports here is used by the traffic simulator
(to emit realistic destinations) and by validation code.
"""

from __future__ import annotations

from repro.errors import AddressError

#: Highest valid TCP port number.
MAX_PORT = 65535

#: Ports the simulated applications actually use, mapped to service names.
WELL_KNOWN_PORTS: dict[int, str] = {
    80: "http",
    443: "https",
    8080: "http-alt",
    8000: "http-dev",
    3128: "proxy",
}


def validate_port(port: int) -> int:
    """Return ``port`` if it is a valid TCP port, else raise.

    :raises AddressError: when the value is outside ``1..65535``.
    """
    if not isinstance(port, int) or isinstance(port, bool):
        raise AddressError("port must be an int", str(port))
    if not 1 <= port <= MAX_PORT:
        raise AddressError("port out of range", str(port))
    return port


def ports_match(port_a: int, port_b: int) -> bool:
    """The paper's ``match(port_x, port_y)`` boolean comparison.

    Both operands are validated so a corrupt trace fails loudly rather than
    silently comparing garbage.
    """
    return validate_port(port_a) == validate_port(port_b)


def service_name(port: int) -> str:
    """Human-readable service label for a port (``"http"``, ``"tcp/1234"``)."""
    validate_port(port)
    return WELL_KNOWN_PORTS.get(port, f"tcp/{port}")
