"""Network-layer substrate: IPv4 addresses, ports, FQDNs, edit distance.

These are the primitives the paper's *HTTP packet destination distance*
(Section IV-B) is built from:

- :func:`repro.net.ipv4.common_prefix_length` — ``lmatch`` in the paper,
- :func:`repro.net.ports.ports_match` — the boolean port comparison,
- :func:`repro.net.editdist.levenshtein` — ``ed`` over FQDN strings.
"""

from repro.net.editdist import levenshtein, normalized_levenshtein
from repro.net.fqdn import Fqdn, registered_domain
from repro.net.ipv4 import IPv4Address, common_prefix_length
from repro.net.registry import IpRegistry, registry_corrected_ip_distance
from repro.net.ports import WELL_KNOWN_PORTS, ports_match

__all__ = [
    "IPv4Address",
    "common_prefix_length",
    "WELL_KNOWN_PORTS",
    "ports_match",
    "Fqdn",
    "registered_domain",
    "levenshtein",
    "normalized_levenshtein",
    "IpRegistry",
    "registry_corrected_ip_distance",
]
