"""IPv4 address model and bit-level prefix comparison.

The paper defines the destination IP distance through ``lmatch``, "a function
[that] returns a number of common upper bits in two IP address[es]".  This
module provides a small immutable :class:`IPv4Address` value type and the
:func:`common_prefix_length` primitive, written from scratch so the library
has no dependency on :mod:`ipaddress` semantics (and so the bit arithmetic
the metric relies on is explicit and testable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError

#: Number of bits in an IPv4 address; the paper normalizes ``lmatch`` by 32.
ADDRESS_BITS = 32

_MAX = (1 << ADDRESS_BITS) - 1


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """An immutable IPv4 address stored as a 32-bit unsigned integer.

    Construct either directly from an integer or via :meth:`parse` from
    dotted-quad text.  Instances are hashable and totally ordered by
    numeric value, so they can key dictionaries and sort deterministically.

    >>> IPv4Address.parse("192.168.0.1").value
    3232235521
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX:
            raise AddressError("IPv4 value out of range", str(self.value))

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad text (``"10.0.0.1"``) into an address.

        :raises AddressError: if the text is not four dot-separated decimal
            octets in ``0..255``.  Leading zeros are accepted (``"010"`` is
            read as decimal 10) because captured traffic logs are sloppy.
        """
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError("expected four octets", text)
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError("non-numeric octet", text)
            octet = int(part)
            if octet > 255:
                raise AddressError("octet out of range", text)
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_octets(cls, a: int, b: int, c: int, d: int) -> "IPv4Address":
        """Build an address from four integer octets."""
        for octet in (a, b, c, d):
            if not 0 <= octet <= 255:
                raise AddressError("octet out of range", f"{a}.{b}.{c}.{d}")
        return cls((a << 24) | (b << 16) | (c << 8) | d)

    @property
    def octets(self) -> tuple[int, int, int, int]:
        """The four octets, most significant first."""
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets)

    def bits(self) -> str:
        """The address as a 32-character binary string (for debugging)."""
        return format(self.value, "032b")

    def in_network(self, network: "IPv4Address", prefix_len: int) -> bool:
        """Whether this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= ADDRESS_BITS:
            raise AddressError("prefix length out of range", str(prefix_len))
        if prefix_len == 0:
            return True
        shift = ADDRESS_BITS - prefix_len
        return (self.value >> shift) == (network.value >> shift)


def common_prefix_length(a: IPv4Address, b: IPv4Address) -> int:
    """Number of identical leading bits of two addresses (``lmatch``).

    This is the paper's ``lmatch(ip_x, ip_y)``: addresses allocated to the
    same organization share long upper-bit prefixes, so a large value hints
    that two destinations are operated by the same party.

    >>> common_prefix_length(IPv4Address.parse("10.0.0.1"),
    ...                      IPv4Address.parse("10.0.0.2"))
    30
    """
    diff = a.value ^ b.value
    if diff == 0:
        return ADDRESS_BITS
    return ADDRESS_BITS - diff.bit_length()
