"""Levenshtein edit distance, written from scratch.

The HTTP host distance in the paper is

    d_host(p_x, p_y) = ed(host_x, host_y) / max(len(host_x), len(host_y))

where ``ed`` is the classic edit distance.  We implement the iterative
two-row dynamic program (O(len_a * len_b) time, O(min) space) plus an early
exit banded variant for callers that only care whether two strings are
within a cutoff.
"""

from __future__ import annotations

from collections.abc import Sequence


def levenshtein(a: Sequence, b: Sequence) -> int:
    """Exact edit distance (insert / delete / substitute, unit costs).

    Accepts any sequences with comparable elements — in practice the FQDN
    strings of two HTTP packets.

    >>> levenshtein("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    # Keep the inner loop over the shorter sequence to bound memory.
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_within(a: Sequence, b: Sequence, cutoff: int) -> int | None:
    """Edit distance if it does not exceed ``cutoff``, else ``None``.

    Uses the banded dynamic program: cells farther than ``cutoff`` from the
    diagonal can never contribute to a result <= cutoff, so the row is
    trimmed.  Useful when bucketing many hostnames by near-equality.
    """
    if cutoff < 0:
        raise ValueError("cutoff must be non-negative")
    if abs(len(a) - len(b)) > cutoff:
        return None
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    inf = cutoff + 1
    previous = [j if j <= cutoff else inf for j in range(len(b) + 1)]
    for i, item_a in enumerate(a, start=1):
        lo = max(1, i - cutoff)
        hi = min(len(b), i + cutoff)
        current = [inf] * (len(b) + 1)
        if lo == 1:
            current[0] = i if i <= cutoff else inf
        for j in range(lo, hi + 1):
            item_b = b[j - 1]
            cost = 0 if item_a == item_b else 1
            current[j] = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
        if min(current[lo - 1 : hi + 1], default=inf) > cutoff:
            return None
        previous = current
    result = previous[len(b)]
    return result if result <= cutoff else None


def normalized_levenshtein(a: str, b: str) -> float:
    """Edit distance normalized to ``[0, 1]`` by the longer operand.

    This is exactly the paper's ``d_host`` formula.  Two empty strings are
    defined to be at distance 0 (they are identical).
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest
