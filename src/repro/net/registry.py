"""A simulated address-registration (WHOIS) registry.

The paper's discussion (Section VI) flags a weakness of the IP component
of the destination distance: "two HTTP packets may have close IP addresses
but be owned [by] different organizations, thus generating an erroneously
small distance ... a registration information process such as WHOIS could
be helpful for the verification of IP addresses."

This module implements that suggestion.  An :class:`IpRegistry` maps
address blocks to owning organizations (the corpus builder registers every
service's block); :func:`registry_corrected_ip_distance` consults it and
overrides the bit-prefix heuristic when registration data proves two
addresses belong to different owners — or confirms they share one.

The ``registry`` ablation bench quantifies the effect on clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.net.ipv4 import ADDRESS_BITS, IPv4Address, common_prefix_length


@dataclass(frozen=True, slots=True)
class Allocation:
    """One registered address block.

    :param network: base address of the block.
    :param prefix_len: CIDR prefix length.
    :param organization: owner name ("Google Inc.", "SAKURA Internet"...).
    """

    network: IPv4Address
    prefix_len: int
    organization: str

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= ADDRESS_BITS:
            raise AddressError("prefix length out of range", str(self.prefix_len))

    def contains(self, address: IPv4Address) -> bool:
        return address.in_network(self.network, self.prefix_len)


class IpRegistry:
    """Longest-prefix-match lookup over registered allocations.

    Mirrors how NIR/RIR delegation works: the most specific registered
    block wins.  Lookups for unregistered space return ``None`` — the
    distance correction then falls back to the paper's bit heuristic.
    """

    def __init__(self) -> None:
        self._allocations: list[Allocation] = []

    def register(self, network: str, prefix_len: int, organization: str) -> Allocation:
        """Register ``network/prefix_len`` to ``organization``."""
        allocation = Allocation(IPv4Address.parse(network), prefix_len, organization)
        self._allocations.append(allocation)
        # Keep most-specific-first so lookup can stop at the first hit.
        self._allocations.sort(key=lambda a: -a.prefix_len)
        return allocation

    def __len__(self) -> int:
        return len(self._allocations)

    def lookup(self, address: IPv4Address) -> Allocation | None:
        """The most specific allocation containing ``address``, if any."""
        for allocation in self._allocations:
            if allocation.contains(address):
                return allocation
        return None

    def organization_of(self, address: IPv4Address) -> str | None:
        allocation = self.lookup(address)
        return allocation.organization if allocation else None

    def same_organization(self, a: IPv4Address, b: IPv4Address) -> bool | None:
        """Whether two addresses share a registered owner.

        ``None`` when either side is unregistered — the caller cannot
        conclude anything and should fall back to the heuristic.
        """
        org_a = self.organization_of(a)
        org_b = self.organization_of(b)
        if org_a is None or org_b is None:
            return None
        return org_a == org_b


def registry_corrected_ip_distance(
    registry: IpRegistry, ip_x: IPv4Address, ip_y: IPv4Address
) -> float:
    """``d_ip`` with WHOIS verification (the paper's §VI suggestion).

    - registered to the *same* organization: distance 0.0 regardless of
      how far apart the addresses look bitwise (CDNs spread blocks);
    - registered to *different* organizations: distance 1.0 even if the
      upper bits coincide (the erroneous-proximity case the paper warns
      about);
    - otherwise: the paper's bit-prefix heuristic.
    """
    verdict = registry.same_organization(ip_x, ip_y)
    if verdict is True:
        return 0.0
    if verdict is False:
        return 1.0
    return 1.0 - common_prefix_length(ip_x, ip_y) / ADDRESS_BITS


def build_corpus_registry() -> IpRegistry:
    """The registry covering every shared service in the corpus catalog.

    Organizations follow real 2012 ownership: the Google advertising stack
    (AdMob, DoubleClick, AdSense, Analytics, static hosts) is one owner;
    each Japanese ad network is its own.
    """
    from repro.android.admodules import AD_SERVICES
    from repro.android.webapi import WEB_SERVICES

    google_family = {
        "admob", "google_analytics", "google_api", "gstatic", "ggpht",
    }
    registry = IpRegistry()
    for spec in list(AD_SERVICES) + list(WEB_SERVICES):
        organization = "Google Inc." if spec.name in google_family else f"org:{spec.name}"
        registry.register(spec.ip_base, spec.ip_prefix, organization)
    return registry
