"""Fully-qualified domain name handling.

The paper treats the HTTP host as "the character string of the FQDN" for
the host distance; the corpus statistics (Table II) are reported per
*registered domain* ("admob.com", "yahoo.co.jp") rather than per raw host.
This module provides normalization and a small public-suffix table that is
sufficient for the domains appearing in the paper's dataset (``.com``,
``.net``, ``.info``, ``.jp``, ``.co.jp``, ``.ne.jp``, ``.or.jp``, ``.mobi``
...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

#: Multi-label public suffixes seen in Japanese mobile traffic; single-label
#: TLDs are implicit (any final label is a suffix).
_MULTI_LABEL_SUFFIXES: frozenset[tuple[str, ...]] = frozenset(
    {
        ("co", "jp"),
        ("ne", "jp"),
        ("or", "jp"),
        ("ac", "jp"),
        ("go", "jp"),
        ("ad", "jp"),
        ("gr", "jp"),
        ("co", "uk"),
        ("com", "cn"),
        ("com", "tw"),
    }
)

_ALLOWED = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-_")


def normalize_host(host: str) -> str:
    """Lowercase, strip the trailing dot and surrounding space of a host.

    :raises ParseError: on an empty host or one with illegal characters.
    """
    cleaned = host.strip().rstrip(".").lower()
    if not cleaned:
        raise ParseError("empty host name", host)
    for label in cleaned.split("."):
        if not label:
            raise ParseError("empty label in host", host)
        if any(ch not in _ALLOWED for ch in label):
            raise ParseError("illegal character in host", host)
    return cleaned


def registered_domain(host: str) -> str:
    """The registrable domain of ``host`` ("a.b.admob.com" -> "admob.com").

    Uses the embedded suffix table for two-label public suffixes and falls
    back to "last two labels" otherwise, which matches how the paper's
    Table II aggregates destinations.  A bare TLD or single label is
    returned unchanged.
    """
    cleaned = normalize_host(host)
    labels = cleaned.split(".")
    if len(labels) <= 2:
        return cleaned
    if tuple(labels[-2:]) in _MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-3:])
    return ".".join(labels[-2:])


@dataclass(frozen=True, slots=True)
class Fqdn:
    """A normalized fully-qualified domain name.

    >>> Fqdn.parse("Ads.AdMob.Com").registered
    'admob.com'
    """

    name: str

    @classmethod
    def parse(cls, text: str) -> "Fqdn":
        return cls(normalize_host(text))

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self.name.split("."))

    @property
    def registered(self) -> str:
        """The registrable domain (aggregation key for Table II)."""
        return registered_domain(self.name)

    @property
    def subdomain(self) -> str:
        """Everything left of the registered domain, possibly empty."""
        reg = self.registered
        if self.name == reg:
            return ""
        return self.name[: -(len(reg) + 1)]

    def __str__(self) -> str:
        return self.name
