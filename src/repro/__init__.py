"""repro — signature generation for sensitive-information leakage in
Android application HTTP traffic.

A from-scratch reproduction of Kuzuno & Tonami, "Signature Generation for
Sensitive Information Leakage in Android Applications" (2013).  The
package contains both the paper's contribution (HTTP packet distances,
group-average hierarchical clustering, conjunction-signature generation
and matching) and the full experimental substrate (a simulated Android
permission framework, advertisement-module wire formats, and a calibrated
1,188-app traffic corpus).

Quickstart::

    from repro import mini_corpus, DetectionPipeline

    corpus = mini_corpus(seed=7)
    pipeline = DetectionPipeline(corpus.trace, corpus.payload_check())
    result = pipeline.run(n_sample=60)
    print(f"TP {result.metrics.tp_percent:.1f}%  FP {result.metrics.fp_percent:.2f}%")
"""

from repro.core.distribution import (
    ChannelHealth,
    FetchResult,
    FetchStatus,
    SignatureChannel,
    SignatureFetcher,
)
from repro.core.flowcontrol import Decision, FlowControlApp, PolicyAction
from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.core.server import SignatureServer
from repro.core.streaming import StreamingClusterer, StreamingConfig
from repro.distance.blocking import BlockingConfig, BlockingMode
from repro.reliability import (
    CircuitBreaker,
    FaultKind,
    FaultPlan,
    Quarantine,
    RetryPolicy,
    WorkerFaultPlan,
)
from repro.dataset.trace import Trace
from repro.distance.ncd import Compressor, ncd
from repro.distance.packet import PacketDistance
from repro.errors import ReproError
from repro.http.packet import Destination, HttpPacket
from repro.http.parser import parse_request
from repro.sensitive.identifiers import DeviceIdentity, IdentifierKind
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import ProbabilisticMatcher, SignatureMatcher
from repro.signatures.store import SignatureStore
from repro.service.server import ServiceServer, SignatureService
from repro.simulation.corpus import Corpus, build_corpus, mini_corpus, paper_corpus
from repro.supervision import CheckpointStore, CrashPlan, StagedPipeline, Supervisor

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # packets
    "HttpPacket",
    "Destination",
    "parse_request",
    "Trace",
    # sensitive information
    "DeviceIdentity",
    "IdentifierKind",
    "PayloadCheck",
    # distances
    "ncd",
    "Compressor",
    "PacketDistance",
    # signatures
    "ConjunctionSignature",
    "SignatureMatcher",
    "ProbabilisticMatcher",
    "SignatureStore",
    # system
    "SignatureServer",
    "FlowControlApp",
    "PolicyAction",
    "Decision",
    "DetectionPipeline",
    "PipelineConfig",
    # streaming blocked clustering
    "StreamingClusterer",
    "StreamingConfig",
    "BlockingConfig",
    "BlockingMode",
    # distribution & reliability
    "SignatureChannel",
    "SignatureFetcher",
    "FetchResult",
    "FetchStatus",
    "ChannelHealth",
    "FaultPlan",
    "FaultKind",
    "RetryPolicy",
    "CircuitBreaker",
    "Quarantine",
    # supervised execution
    "WorkerFaultPlan",
    "CheckpointStore",
    "CrashPlan",
    "StagedPipeline",
    "Supervisor",
    # network service
    "SignatureService",
    "ServiceServer",
    # corpus
    "Corpus",
    "build_corpus",
    "paper_corpus",
    "mini_corpus",
]
