"""Retry budgets, exponential backoff with seeded jitter, circuit breaking.

Time here is *logical*: the fetcher advances a tick counter by one per
attempt plus the backoff delay it would have slept.  The circuit breaker
compares those ticks against its cooldown — no wall clock anywhere, so a
retry schedule replays exactly (DESIGN.md §6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with bounded, seeded jitter.

    Delay before retry ``k`` (0-based) is
    ``min(max_delay, base_delay * multiplier**k)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.

    :param max_attempts: total tries including the first (>= 1).
    :param base_delay: first backoff delay in logical ticks.
    :param multiplier: geometric growth factor (>= 1).
    :param max_delay: cap applied before jitter.
    :param jitter: relative jitter half-width in ``[0, 1)``.
    """

    max_attempts: int = 4
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise SimulationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise SimulationError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, retry_index: int, rng: Random) -> float:
        """The delay (logical ticks) before retry ``retry_index``.

        :param retry_index: 0 for the first retry, 1 for the second, ...
        :param rng: a seeded RNG; the only randomness source for jitter.
        """
        if retry_index < 0:
            raise SimulationError(f"retry_index must be >= 0, got {retry_index}")
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    def schedule(self, rng: Random) -> list[float]:
        """The full delay sequence for one exhausted retry session
        (``max_attempts - 1`` entries)."""
        return [self.backoff(k, rng) for k in range(self.max_attempts - 1)]


class BreakerState(enum.Enum):
    """Classic three-state circuit breaker."""

    CLOSED = "closed"  # normal operation
    OPEN = "open"  # tripping threshold hit; calls refused until cooldown
    HALF_OPEN = "half_open"  # cooldown elapsed; probe calls admitted


class CircuitBreaker:
    """Trips after consecutive failures, half-opens after a cooldown.

    All timing is in the caller's logical ticks — pass the current tick to
    :meth:`allow` and :meth:`record_failure`.

    :param failure_threshold: consecutive failures that open the circuit.
    :param cooldown: ticks the circuit stays open before admitting probes.
    """

    def __init__(self, failure_threshold: int = 5, cooldown: float = 30.0) -> None:
        if failure_threshold < 1:
            raise SimulationError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise SimulationError(f"cooldown must be non-negative, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def state(self, now: float) -> BreakerState:
        """The effective state at logical time ``now``."""
        if self._state is BreakerState.OPEN and now - self._opened_at >= self.cooldown:
            return BreakerState.HALF_OPEN
        return self._state

    def allow(self, now: float) -> bool:
        """Whether an attempt may proceed at logical time ``now``.

        Transitions OPEN -> HALF_OPEN as a side effect once the cooldown
        has elapsed, so the admitted call acts as the probe.
        """
        state = self.state(now)
        if state is BreakerState.HALF_OPEN and self._state is BreakerState.OPEN:
            self._state = BreakerState.HALF_OPEN
        return state is not BreakerState.OPEN

    def record_success(self) -> None:
        """A call succeeded: close the circuit and reset the streak."""
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """A call failed at ``now``: extend the streak, maybe (re)open."""
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            # The probe failed — straight back to OPEN for another cooldown.
            self._state = BreakerState.OPEN
            self._opened_at = now
            self.trips += 1
        elif (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = now
            self.trips += 1
