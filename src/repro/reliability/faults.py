"""Seeded, deterministic fault injection for byte payloads.

A :class:`FaultPlan` models the unreliable path between the signature
server and a device (or between devices and the collection server).  Each
:meth:`~FaultPlan.apply` call draws from an RNG derived from the plan's
seed and a per-call counter, so a plan replays bit-for-bit: same seed,
same call order, same faults.  No wall clock, no global RNG (DESIGN.md §6).

The taxonomy covers the failure modes a crowd-sourced distribution pipeline
actually sees:

- ``DROP`` — the payload never arrives (connection reset, radio loss);
- ``TRUNCATE`` — a prefix arrives (interrupted transfer);
- ``CORRUPT`` — bytes arrive flipped (bad storage, broken middlebox);
- ``DELAY`` — the payload arrives intact but late (logical ticks);
- ``STALE`` — an *older* version is served (misbehaving cache / CDN).

``STALE`` is signalled, not synthesized: the plan has no version history,
so the consumer (e.g. :class:`repro.core.distribution.SignatureChannel`)
substitutes an earlier payload when it sees the outcome kind.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SimulationError
from repro.simulation.rng import derive_rng


class FaultKind(enum.Enum):
    """What the channel did to one transmission."""

    NONE = "none"
    DROP = "drop"
    TRUNCATE = "truncate"
    CORRUPT = "corrupt"
    DELAY = "delay"
    STALE = "stale"


@dataclass(frozen=True, slots=True)
class FaultOutcome:
    """The result of pushing one payload through the fault plan.

    :param kind: which fault fired (``NONE`` for a clean pass).
    :param payload: the delivered bytes; ``None`` when dropped.
    :param delay_ticks: logical latency added by a ``DELAY`` fault.
    """

    kind: FaultKind
    payload: bytes | None
    delay_ticks: float = 0.0

    @property
    def delivered(self) -> bool:
        """Whether *any* bytes reached the receiver (possibly mangled)."""
        return self.payload is not None


class FaultPlan:
    """A seeded injector applying one fault taxonomy at fixed rates.

    Rates are independent probabilities that must sum to at most 1; the
    remainder is the clean-delivery probability.  Outcomes are counted in
    :attr:`counts` for health reporting and assertions.

    :param seed: determinism root; two plans with equal seeds and rates
        produce identical outcome sequences.
    :param drop: probability a payload is dropped entirely.
    :param truncate: probability a payload is cut to a strict prefix.
    :param corrupt: probability 1-4 bytes are bit-flipped.
    :param delay: probability the payload is delayed (still intact).
    :param stale: probability a stale version is signalled.
    :param max_delay_ticks: upper bound of the uniform delay draw.
    :raises SimulationError: for rates outside ``[0, 1]`` or summing past 1.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop: float = 0.0,
        truncate: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        stale: float = 0.0,
        max_delay_ticks: float = 8.0,
    ) -> None:
        rates = {
            FaultKind.DROP: drop,
            FaultKind.TRUNCATE: truncate,
            FaultKind.CORRUPT: corrupt,
            FaultKind.DELAY: delay,
            FaultKind.STALE: stale,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{kind.value} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-9:
            raise SimulationError(f"fault rates sum to {sum(rates.values()):.3f} > 1")
        if max_delay_ticks < 0:
            raise SimulationError(f"max_delay_ticks must be non-negative, got {max_delay_ticks}")
        self.seed = seed
        self.rates = rates
        self.max_delay_ticks = max_delay_ticks
        self.counts: Counter[FaultKind] = Counter()
        self._calls = 0

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A plan spreading ``rate`` across the whole taxonomy.

        Split 40% drop / 25% corrupt / 15% truncate / 10% delay / 10%
        stale — the mix the chaos bench sweeps.
        """
        return cls(
            seed=seed,
            drop=0.40 * rate,
            corrupt=0.25 * rate,
            truncate=0.15 * rate,
            delay=0.10 * rate,
            stale=0.10 * rate,
        )

    @property
    def total_rate(self) -> float:
        """Combined probability that *some* fault fires per transmission."""
        return sum(self.rates.values())

    @property
    def calls(self) -> int:
        """How many payloads have been pushed through the plan."""
        return self._calls

    def apply(self, payload: bytes, *labels: str) -> FaultOutcome:
        """Push one payload through the channel.

        :param payload: the bytes being transmitted.
        :param labels: extra derivation labels (e.g. a device id) so two
            logical streams sharing a plan stay independent.
        """
        self._calls += 1
        rng = derive_rng(self.seed, "fault", str(self._calls), *labels)
        point = rng.random()
        cumulative = 0.0
        chosen = FaultKind.NONE
        for kind, rate in self.rates.items():
            cumulative += rate
            if point < cumulative:
                chosen = kind
                break
        self.counts[chosen] += 1

        if chosen is FaultKind.DROP:
            return FaultOutcome(kind=chosen, payload=None)
        if chosen is FaultKind.TRUNCATE:
            if len(payload) <= 1:
                return FaultOutcome(kind=chosen, payload=b"")
            cut = rng.randrange(0, len(payload))
            return FaultOutcome(kind=chosen, payload=payload[:cut])
        if chosen is FaultKind.CORRUPT:
            return FaultOutcome(kind=chosen, payload=self._corrupt(payload, rng))
        if chosen is FaultKind.DELAY:
            return FaultOutcome(
                kind=chosen,
                payload=payload,
                delay_ticks=rng.uniform(0.0, self.max_delay_ticks),
            )
        # STALE: payload passed through untouched; the consumer substitutes
        # an older version when it sees the kind.
        return FaultOutcome(kind=chosen, payload=payload)

    def apply_stream(self, payloads: Iterable[bytes], *labels: str) -> Iterator[FaultOutcome]:
        """Apply the plan to each payload of a stream, in order.

        Dropped payloads still yield an outcome (with ``payload=None``) so
        the caller can count losses.
        """
        for index, payload in enumerate(payloads):
            yield self.apply(payload, *labels, str(index))

    @staticmethod
    def _corrupt(payload: bytes, rng) -> bytes:
        if not payload:
            return payload
        mangled = bytearray(payload)
        n_flips = 1 + rng.randrange(4)
        for __ in range(n_flips):
            position = rng.randrange(len(mangled))
            mangled[position] ^= 1 + rng.randrange(255)
        return bytes(mangled)
