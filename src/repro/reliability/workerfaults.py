"""Seeded, deterministic fault injection for distance-engine workers.

:class:`repro.reliability.faults.FaultPlan` models an unreliable *network*
between the server and its devices; :class:`WorkerFaultPlan` models an
unreliable *compute fleet* inside the server: pool workers crash mid-chunk,
hang past their deadline, or silently return corrupted results.  The unit
of failure is one condensed-matrix **chunk** — the task granularity of
:class:`repro.distance.engine.DistanceEngine` — so recovery can re-dispatch
exactly the work that was lost.

The taxonomy:

- ``CRASH`` — the worker dies mid-chunk; the chunk's result is lost and the
  task slot reports the loss (simulated at task granularity: a real
  SIGKILL would also take down unrelated in-flight tasks, which the
  deterministic model deliberately avoids).
- ``HANG`` — the worker wedges; the dispatcher charges the chunk's full
  logical-tick deadline before declaring the attempt dead.
- ``POISON`` — the worker returns a *plausible but wrong* result: values are
  corrupted after the honest integrity checksum was taken, modelling memory
  corruption between compute and delivery.  Detection is the dispatcher's
  job (checksum verification), recovery is quarantine-then-serial-recompute.

Outcomes are a pure function of ``(seed, chunk_index, attempt)``, so the
same plan replays identically regardless of worker count, scheduling, or
which process evaluates it — the property that lets the engine promise
bit-identical recovered runs.  The plan is picklable and crosses the pool
boundary inside the worker-state payload; parent-side bookkeeping uses
:meth:`record`, which workers never call.
"""

from __future__ import annotations

import enum
from collections import Counter

import numpy as np

from repro.errors import SimulationError
from repro.simulation.rng import derive_rng


class ChunkFaultKind(enum.Enum):
    """What happened to one chunk-evaluation attempt."""

    NONE = "none"
    CRASH = "crash"
    HANG = "hang"
    POISON = "poison"


class WorkerFaultPlan:
    """A seeded injector of worker failures at chunk granularity.

    Rates are independent probabilities that must sum to at most 1; the
    remainder is the clean-evaluation probability.

    :param seed: determinism root; equal seeds and rates produce identical
        outcome sequences for every ``(chunk_index, attempt)``.
    :param crash: probability an attempt loses its result entirely.
    :param hang: probability an attempt wedges until its deadline.
    :param poison: probability an attempt returns corrupted values.
    :param deadline_ticks: logical ticks charged before a hung attempt is
        declared dead (the engine's per-chunk deadline).
    :raises SimulationError: for rates outside ``[0, 1]``, rates summing
        past 1, or a non-positive deadline.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        crash: float = 0.0,
        hang: float = 0.0,
        poison: float = 0.0,
        deadline_ticks: int = 64,
    ) -> None:
        rates = {
            ChunkFaultKind.CRASH: crash,
            ChunkFaultKind.HANG: hang,
            ChunkFaultKind.POISON: poison,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{kind.value} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-9:
            raise SimulationError(f"fault rates sum to {sum(rates.values()):.3f} > 1")
        if deadline_ticks < 1:
            raise SimulationError(f"deadline_ticks must be >= 1, got {deadline_ticks}")
        self.seed = seed
        self.rates = rates
        self.deadline_ticks = deadline_ticks
        #: Parent-side outcome tally (workers never mutate this).
        self.counts: Counter[ChunkFaultKind] = Counter()

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, *, deadline_ticks: int = 64) -> "WorkerFaultPlan":
        """A plan spreading ``rate`` across the whole taxonomy.

        Split 40% crash / 30% hang / 30% poison — the mix the pipeline
        chaos sweep uses.
        """
        return cls(
            seed=seed,
            crash=0.40 * rate,
            hang=0.30 * rate,
            poison=0.30 * rate,
            deadline_ticks=deadline_ticks,
        )

    @property
    def total_rate(self) -> float:
        """Combined probability that *some* fault fires per attempt."""
        return sum(self.rates.values())

    @property
    def faults_recorded(self) -> int:
        """Parent-side count of non-clean outcomes recorded so far."""
        return sum(count for kind, count in self.counts.items() if kind is not ChunkFaultKind.NONE)

    def outcome(self, chunk_index: int, attempt: int) -> ChunkFaultKind:
        """The fault (if any) for one evaluation attempt.

        Pure and side-effect free — safe to call from pool workers; the
        dispatcher tallies outcomes with :meth:`record` in the parent.
        """
        rng = derive_rng(self.seed, "worker-fault", str(chunk_index), str(attempt))
        point = rng.random()
        cumulative = 0.0
        for kind, rate in self.rates.items():
            cumulative += rate
            if point < cumulative:
                return kind
        return ChunkFaultKind.NONE

    def record(self, kind: ChunkFaultKind) -> None:
        """Tally one observed outcome (parent-side bookkeeping)."""
        self.counts[kind] += 1

    def corrupt(self, values: np.ndarray, chunk_index: int, attempt: int) -> np.ndarray:
        """Deterministically corrupt a chunk result (the POISON payload).

        Perturbs 1-4 entries so the result stays *plausible* — finite,
        non-negative floats — which is exactly why poison must be caught by
        integrity checksums rather than range validation.
        """
        if len(values) == 0:
            return values
        rng = derive_rng(self.seed, "worker-poison", str(chunk_index), str(attempt))
        mangled = values.copy()
        for __ in range(1 + rng.randrange(4)):
            position = rng.randrange(len(mangled))
            mangled[position] = abs(mangled[position]) + 1.0 + rng.random()
        return mangled
