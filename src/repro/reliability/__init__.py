"""Fault tolerance primitives for the signature distribution path.

The paper's deployment (Fig 3) is a continuously running signature server
feeding on-device flow-control applications.  At crowd scale the unreliable
edge is the default case: devices drop off networks mid-transfer, payloads
arrive truncated or bit-flipped, caches serve stale versions.  This package
provides the building blocks the distribution layer
(:mod:`repro.core.distribution`) is assembled from:

- :mod:`repro.reliability.faults` — a seeded, deterministic fault injector
  (drop, truncate, bit-corrupt, delay, stale-read) applicable to any byte
  payload or packet stream;
- :mod:`repro.reliability.retry` — exponential backoff with seeded jitter,
  attempt budgets, and a circuit breaker over a *logical* clock;
- :mod:`repro.reliability.quarantine` — a bounded holding pen for malformed
  inputs so one corrupt record never aborts a batch;
- :mod:`repro.reliability.workerfaults` — a seeded injector of *compute*
  failures (worker crash / hang-past-deadline / poisoned result) at
  distance-engine chunk granularity, the counterpart of the network-side
  :class:`~repro.reliability.faults.FaultPlan` for the supervised
  execution layer (:mod:`repro.supervision`).

Everything here follows the repo's determinism rule (DESIGN.md §6): no
wall-clock reads, no global RNG — faults and jitter derive from explicit
seeds, and time is a logical tick counter advanced by the caller.
"""

from repro.reliability.faults import FaultKind, FaultOutcome, FaultPlan
from repro.reliability.quarantine import Quarantine, QuarantineRecord
from repro.reliability.retry import BreakerState, CircuitBreaker, RetryPolicy
from repro.reliability.workerfaults import ChunkFaultKind, WorkerFaultPlan

__all__ = [
    "FaultKind",
    "FaultOutcome",
    "FaultPlan",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerState",
    "ChunkFaultKind",
    "Quarantine",
    "QuarantineRecord",
    "WorkerFaultPlan",
]
