"""A bounded holding pen for malformed inputs — and misbehaving members.

Batch ingestion must never abort because one record is corrupt: a single
bit-flipped packet from one device would otherwise discard a whole
collection round.  Failures land here instead, with per-error-type
counters for health reporting; the record buffer is bounded so a flood of
garbage cannot exhaust memory (the counters keep counting past the cap).

Beyond per-record bookkeeping, a quarantine can also *ban members* — a
member being, e.g., a fleet device id whose malformed/replay rate tripped
its circuit breaker.  Bans are tick-based: with ``release_after_ticks``
set, a banned member is re-admitted once the cooldown elapses (and is
re-banned just as readily if it keeps misbehaving), so a transiently
faulty device is not lost forever; without it, bans are permanent.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.errors import SimulationError


def _preview(payload: object, limit: int = 96) -> str:
    text = repr(payload)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass(frozen=True, slots=True)
class QuarantineRecord:
    """One quarantined input.

    :param reason: short category, defaults to the exception class name.
    :param error: the stringified exception.
    :param preview: truncated repr of the offending payload.
    """

    reason: str
    error: str
    preview: str


class Quarantine:
    """Bounded FIFO of rejected inputs plus unbounded counters.

    :param capacity: maximum records retained (older ones are evicted).
    :param release_after_ticks: cooldown after which a banned member is
        re-admitted (``None`` = bans never expire).  Timing is in the
        caller's logical ticks, like the rest of :mod:`repro.reliability`.
    """

    def __init__(self, capacity: int = 256, release_after_ticks: float | None = None) -> None:
        if capacity < 1:
            raise SimulationError(f"quarantine capacity must be >= 1, got {capacity}")
        if release_after_ticks is not None and release_after_ticks <= 0:
            raise SimulationError(
                f"release_after_ticks must be positive, got {release_after_ticks}"
            )
        self.capacity = capacity
        self.release_after_ticks = release_after_ticks
        self.records: deque[QuarantineRecord] = deque(maxlen=capacity)
        self.counts: Counter[str] = Counter()
        self.total = 0
        self._banned_at: dict[str, float] = {}
        self.bans = 0
        self.releases = 0

    def add(self, error: Exception, payload: object = None, reason: str = "") -> QuarantineRecord:
        """Quarantine one failed input and return its record."""
        record = QuarantineRecord(
            reason=reason or type(error).__name__,
            error=str(error),
            preview=_preview(payload) if payload is not None else "",
        )
        self.records.append(record)
        self.counts[record.reason] += 1
        self.total += 1
        return record

    def __len__(self) -> int:
        """Records currently retained (<= capacity; see :attr:`total`)."""
        return len(self.records)

    def __bool__(self) -> bool:
        return self.total > 0

    def summary(self) -> dict[str, int]:
        """Counts by reason, for health reports and tests."""
        return dict(self.counts)

    # -- member bans (cooldown-released) -------------------------------------------

    def ban(
        self,
        member: str,
        now: float,
        error: Exception | None = None,
        reason: str = "",
    ) -> None:
        """Ban ``member`` at logical time ``now`` (re-banning restarts the clock).

        When an ``error`` is given it is also recorded like :meth:`add`, so
        the ban shows up in :meth:`summary` under its reason.
        """
        self._banned_at[member] = now
        self.bans += 1
        if error is not None:
            self.add(error, payload=member, reason=reason)

    def is_banned(self, member: str, now: float) -> bool:
        """Whether ``member`` is banned at ``now``.

        A ban whose cooldown has elapsed is released as a side effect —
        the member is re-admitted and :attr:`releases` is bumped — so the
        next misbehaviour starts a fresh ban rather than extending a stale
        one.
        """
        banned_at = self._banned_at.get(member)
        if banned_at is None:
            return False
        if (
            self.release_after_ticks is not None
            and now - banned_at >= self.release_after_ticks
        ):
            del self._banned_at[member]
            self.releases += 1
            return False
        return True

    def release(self, member: str) -> bool:
        """Manually release one member; returns whether it was banned."""
        if member in self._banned_at:
            del self._banned_at[member]
            self.releases += 1
            return True
        return False

    def banned_members(self, now: float) -> list[str]:
        """Members still banned at ``now``, sorted (expired bans released)."""
        return sorted(member for member in list(self._banned_at) if self.is_banned(member, now))
