"""A bounded holding pen for malformed inputs.

Batch ingestion must never abort because one record is corrupt: a single
bit-flipped packet from one device would otherwise discard a whole
collection round.  Failures land here instead, with per-error-type
counters for health reporting; the record buffer is bounded so a flood of
garbage cannot exhaust memory (the counters keep counting past the cap).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.errors import SimulationError


def _preview(payload: object, limit: int = 96) -> str:
    text = repr(payload)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass(frozen=True, slots=True)
class QuarantineRecord:
    """One quarantined input.

    :param reason: short category, defaults to the exception class name.
    :param error: the stringified exception.
    :param preview: truncated repr of the offending payload.
    """

    reason: str
    error: str
    preview: str


class Quarantine:
    """Bounded FIFO of rejected inputs plus unbounded counters.

    :param capacity: maximum records retained (older ones are evicted).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise SimulationError(f"quarantine capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records: deque[QuarantineRecord] = deque(maxlen=capacity)
        self.counts: Counter[str] = Counter()
        self.total = 0

    def add(self, error: Exception, payload: object = None, reason: str = "") -> QuarantineRecord:
        """Quarantine one failed input and return its record."""
        record = QuarantineRecord(
            reason=reason or type(error).__name__,
            error=str(error),
            preview=_preview(payload) if payload is not None else "",
        )
        self.records.append(record)
        self.counts[record.reason] += 1
        self.total += 1
        return record

    def __len__(self) -> int:
        """Records currently retained (<= capacity; see :attr:`total`)."""
        return len(self.records)

    def __bool__(self) -> bool:
        return self.total > 0

    def summary(self) -> dict[str, int]:
        """Counts by reason, for health reports and tests."""
        return dict(self.counts)
