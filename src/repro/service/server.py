"""The network-facing signature service: six endpoints over a real socket.

This is the deployment shape the paper implies but never specifies — the
server side of Fig 3 as an actual listener.  A stdlib
:class:`~http.server.ThreadingHTTPServer` fronts the subsystems every
prior layer built, one route each:

==========================  ====================================================
``POST /v1/signatures``     publish a checksummed format-2 envelope; persisted
                            through :class:`~repro.service.repository.SignatureRepository`
                            then hot-reloaded into the gateway (never-regress:
                            a stale version is ``409``, exactly the
                            :class:`~repro.core.distribution.SignatureFetcher` rule)
``GET /v1/signatures``      fetch the newest stored envelope **verbatim**
                            (byte-identical to what was published);
                            ``?since=V`` answers ``304`` when nothing newer
``POST /v1/screen``         screen a tick-ordered event stream through the
                            live :class:`~repro.serving.gateway.ScreeningGateway`
                            (DROP/DEGRADE shedding inherited); decisions are
                            bit-identical to the in-process gateway
``POST /v1/reports``        fleet report ingest through
                            :class:`~repro.federation.ingest.FleetIngest`
                            (validation, replay defense, quarantine); accepted
                            reports persist in the report repository
``GET /metrics``            Prometheus text exposition of the shared
                            :class:`~repro.obs.metrics.Metrics` registry —
                            HTTP, gateway, and ingest counters in one page
``GET /healthz``            liveness + the gateway's public
                            :meth:`~repro.serving.gateway.ScreeningGateway.health_snapshot`
==========================  ====================================================

Request handling is thread-per-request; the gateway and ingest plane are
each guarded by a lock, so one screening episode or publish is atomic
while sqlite WAL lets readers proceed.  Every unexpected exception is
caught at the route boundary and mapped to a counted JSON ``500`` — the
load harness budgets that count at zero.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Sequence
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServiceError, SignatureStoreError
from repro.federation.ingest import FleetIngest, IngestConfig
from repro.federation.report import token_for
from repro.obs import Observability
from repro.obs.context import (
    NULL_FLIGHT_RECORDER,
    NULL_REQUEST_TRACER,
    FlightRecorder,
    RequestTracer,
)
from repro.obs.metrics import Metrics
from repro.obs.tracer import deterministic_run_id
from repro.serving.gateway import GatewayConfig, ScreeningGateway
from repro.serving.telemetry import ServingTelemetry
from repro.service.repository import open_repositories
from repro.service.wire import decode_event, encode_results, extract_traceparent
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore

#: Wall-clock request latency bucket edges, in milliseconds.
REQUEST_MS_BOUNDS: tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Service wiring: the gateway and ingest tunings plus service knobs.

    :param gateway: screening data-plane tuning.
    :param ingest: fleet-report admission tuning.
    :param report_tick_step: logical ticks the ingest clock advances per
        submitted report (the service has no load generator driving it,
        so arrival ticks are synthesized monotonically).
    :param max_body_bytes: request-body bound; larger posts are ``413``.
    :param seed: hashed (with the service config label) into the obs run
        id that ``/healthz`` and every trace id carry.
    :param tracing: record request-scoped server spans (route span plus
        repository/gateway/ingest children), continuing any
        ``traceparent`` the client sent.  Off by default; when off the
        null tracer guarantees responses are byte-identical.
    :param access_log_path: JSONL structured access log (route, status,
        ms, trace id per line); ``None`` (the default) disables it.
    :param flight_recorder_size: ring capacity of the incident flight
        recorder; ``0`` disables it.
    """

    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)
    report_tick_step: float = 1.0
    max_body_bytes: int = 32 * 1024 * 1024
    seed: int = 0
    tracing: bool = False
    access_log_path: str | None = None
    flight_recorder_size: int = 256

    def __post_init__(self) -> None:
        if self.report_tick_step <= 0:
            raise ServiceError("report_tick_step must be positive")
        if self.max_body_bytes < 1:
            raise ServiceError("max_body_bytes must be >= 1")
        if self.flight_recorder_size < 0:
            raise ServiceError("flight_recorder_size must be >= 0")


class SignatureService:
    """All service state behind the HTTP handler, usable without a socket.

    Every endpoint has a plain-Python method (``publish`` / ``fetch`` /
    ``screen`` / ``ingest_reports`` / ``metrics_text`` / ``health``)
    returning ``(status, payload)``; the handler only does HTTP framing.
    That keeps the logic unit-testable and makes the socket layer thin
    enough to trust.

    :param boot_signatures: generation-1 set, published as version 1 when
        the repository is empty.  When the repository already holds state
        (a restart over a sqlite file), the newest verified envelope wins
        and ``boot_signatures`` is ignored — durable state outlives boots.
    :param db_path: sqlite file for durable state; ``None`` = in-memory.
    :param config: service wiring.
    :param metrics: shared registry for ``/metrics``; created if omitted.
    """

    def __init__(
        self,
        boot_signatures: Sequence[ConjunctionSignature] = (),
        *,
        db_path: str | None = None,
        config: ServiceConfig | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or Metrics()
        self.metrics.histogram("service_request_ms", REQUEST_MS_BOUNDS)
        self.run_id = deterministic_run_id(self.config.seed, "service")
        self.request_tracer: RequestTracer = (
            RequestTracer("server", run_id=self.run_id)
            if self.config.tracing
            else NULL_REQUEST_TRACER
        )
        self.flight_recorder: FlightRecorder = (
            FlightRecorder(self.config.flight_recorder_size)
            if self.config.flight_recorder_size
            else NULL_FLIGHT_RECORDER
        )
        self._access_log = (
            Path(self.config.access_log_path).open("a", encoding="utf-8")
            if self.config.access_log_path
            else None
        )
        self._obs_lock = threading.Lock()
        self._requests_observed = 0
        self.signatures, self.reports, self.store = open_repositories(db_path)
        self.ingest = FleetIngest(
            self.config.ingest, obs=Observability(metrics=self.metrics)
        )
        self._gateway_lock = threading.Lock()
        self._ingest_lock = threading.Lock()
        self._tick = 0.0

        recovered = self.signatures.latest()
        if recovered is not None:
            __, envelope = recovered
            boot_set: Sequence[ConjunctionSignature] = envelope.signatures
            boot_version = envelope.set_version
        else:
            boot_set = boot_signatures
            boot_version = 1
            if boot_signatures:
                self.signatures.store(
                    SignatureStore.dumps_envelope(list(boot_signatures), 1)
                )
        self.gateway = ScreeningGateway(
            list(boot_set),
            config=self.config.gateway,
            telemetry=ServingTelemetry(metrics=self.metrics),
            set_version=boot_version,
            run_id=self.run_id,
        )

    # -- request observation -------------------------------------------------------

    def observe_request(self, route: str, status: int, ms: float, trace_id: str | None = None):
        """Account one served request, wherever it was framed.

        Both the HTTP handler and in-process callers (the ``repro
        metrics`` episode) feed this, so the ``service_request_ms``
        histogram, the uptime counter, the access log, and the flight
        recorder agree regardless of transport.  A 5xx trips the flight
        recorder — the requests leading up to the failure are frozen for
        post-hoc debugging.
        """
        self.metrics.observe("service_request_ms", ms, REQUEST_MS_BOUNDS)
        with self._obs_lock:
            self._requests_observed += 1
        record: dict[str, Any] = {
            "kind": "access",
            "route": route,
            "status": status,
            "ms": round(ms, 3),
            "trace_id": trace_id,
        }
        self.flight_recorder.add(record)
        if status >= 500:
            self.flight_recorder.trip("5xx", route=route, status=status, trace_id=trace_id)
        if self._access_log is not None:
            line = json.dumps(record, sort_keys=True)
            with self._obs_lock:
                self._access_log.write(line + "\n")
                self._access_log.flush()
        return record

    def close_access_log(self) -> None:
        """Release the access-log handle (written lines are already flushed)."""
        if self._access_log is not None:
            self._access_log.close()
            self._access_log = None

    # -- endpoint logic (HTTP-free) ------------------------------------------------

    def publish(self, document: str) -> tuple[int, dict[str, Any]]:
        """``POST /v1/signatures``: verify, persist, hot-reload."""
        try:
            with self._gateway_lock:
                with self.request_tracer.child("repository_write") as span:
                    envelope = self.signatures.store(document)
                    if span is not None:
                        span.attrs["set_version"] = envelope.set_version
                applied = self.gateway.apply_reload(envelope, tick=self._tick)
        except SignatureStoreError as exc:
            return 400, {"error": f"invalid envelope: {exc}"}
        except ServiceError as exc:
            return 409, {"error": str(exc), "latest": self.signatures.latest_version()}
        self.metrics.set_gauge("service_latest_set_version", envelope.set_version)
        return 201, {
            "set_version": envelope.set_version,
            "checksum": envelope.checksum,
            "n_signatures": len(envelope.signatures),
            "reload_applied": applied,
        }

    def fetch(
        self, since: int | None = None
    ) -> tuple[int, str | dict[str, Any], int]:
        """``GET /v1/signatures``: newest verified envelope, verbatim.

        :returns: ``(status, payload, served_version)`` —
            ``(200, document_text, version)``, ``(304, {}, version)`` when
            ``since`` is already current, or ``(404, error, 0)`` when
            nothing valid is stored (including everything-corrupt
            degradation).  ``served_version`` is the version of the
            envelope actually served, which is *lower* than
            ``latest_version()`` after degradation.
        """
        with self.request_tracer.child("repository_read"):
            found = self.signatures.latest()
        if found is None:
            return 404, {"error": "no valid signature set stored"}, 0
        document, envelope = found
        if since is not None and since >= envelope.set_version:
            return 304, {}, envelope.set_version
        return 200, document, envelope.set_version

    def screen(self, records: Any) -> tuple[int, dict[str, Any]]:
        """``POST /v1/screen``: one gateway episode over posted events."""
        if isinstance(records, dict):
            records = records.get("events")
        if not isinstance(records, list) or not records:
            return 400, {"error": "body must be {'events': [...]} with >= 1 event"}
        try:
            events = [decode_event(record) for record in records]
        except ServiceError as exc:
            return 400, {"error": str(exc)}
        with self._gateway_lock:
            with self.request_tracer.child("gateway_screen", n_events=len(events)) as span:
                try:
                    results = self.gateway.run(events)
                except Exception as exc:  # tick-order violations etc.
                    return 400, {"error": str(exc)}
                generation = self.gateway.generation
                set_version = self.gateway.set_version
                if span is not None:
                    span.attrs["generation"] = generation
                    span.attrs["set_version"] = set_version
        shed = sum(1 for result in results if not result.screened)
        if shed:
            self.flight_recorder.trip(
                "shed", route="screen", shed=shed, n_events=len(events)
            )
        return 200, {
            "results": encode_results(results),
            "generation": generation,
            "set_version": set_version,
        }

    def ingest_reports(self, records: Any) -> tuple[int, dict[str, Any]]:
        """``POST /v1/reports``: run each envelope through the ingest gauntlet."""
        if isinstance(records, dict):
            records = records.get("reports")
        if not isinstance(records, list) or not records:
            return 400, {"error": "body must be {'reports': [...]} with >= 1 report"}
        verdicts: list[dict[str, Any]] = []
        accepted = 0
        stored = 0
        banned_devices: list[str] = []
        with self._ingest_lock:
            with self.request_tracer.child("ingest_validate", n_reports=len(records)):
                for record in records:
                    self._tick += self.config.report_tick_step
                    result = self.ingest.submit(record, tick=self._tick)
                    verdict: dict[str, Any] = {
                        "status": result.status.value,
                        "retryable": result.status.retryable,
                    }
                    if result.reason:
                        verdict["reason"] = result.reason
                    if result.banned and isinstance(record, dict):
                        banned_devices.append(str(record.get("device_id", "")))
                    if result.accepted and result.report is not None:
                        accepted += 1
                        report = result.report
                        if self.reports.add(
                            report.device_id,
                            report.seq,
                            report.token,
                            record if isinstance(record, dict) else {},
                        ):
                            stored += 1
                    verdicts.append(verdict)
        if banned_devices:
            self.flight_recorder.trip("quarantine", devices=banned_devices)
        return 200, {"results": verdicts, "accepted": accepted, "stored": stored}

    def metrics_text(self) -> str:
        """``GET /metrics``: the shared registry as Prometheus text."""
        return self.metrics.to_prometheus()

    def health(self) -> tuple[int, dict[str, Any]]:
        """``GET /healthz``: liveness plus public subsystem snapshots."""
        with self._gateway_lock:
            gateway = self.gateway.health_snapshot()
        with self._obs_lock:
            uptime_ticks = self._requests_observed
        return 200, {
            "ok": True,
            "service": {
                # The restart-detection pair: run_id is seed-derived and
                # survives restarts, uptime_ticks resets with the process.
                "run_id": self.run_id,
                "uptime_ticks": uptime_ticks,
                "flight_dumps": len(self.flight_recorder.dumps),
            },
            "gateway": gateway,
            "ingest": self.ingest.stats(),
            "signatures": {
                "latest_version": self.signatures.latest_version(),
                "versions": self.signatures.versions(),
                "corrupt_reads": self.signatures.corrupt_reads(),
            },
            "reports": {"stored": self.reports.count()},
            "storage": {
                "backend": "sqlite" if self.store is not None else "memory",
                "schema_version": self.store.schema_version() if self.store else 0,
            },
        }


class _ServiceHandler(BaseHTTPRequestHandler):
    """HTTP framing only; all decisions live in :class:`SignatureService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"
    #: Status of the last response written on this connection turn, read
    #: back by ``_guard`` for span attrs and access accounting.
    last_status = 0
    # Responses are small and latency-gated by the bench: without
    # TCP_NODELAY, Nagle + delayed ACK adds ~40ms per keep-alive round
    # trip on loopback.
    disable_nagle_algorithm = True

    @property
    def service(self) -> SignatureService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # replaced by the structured access log in observe_request

    # -- plumbing -----------------------------------------------------------------

    def _body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.config.max_body_bytes:
            self._respond_json(413, {"error": f"body exceeds {length} byte limit"})
            return None
        return self.rfile.read(length) if length else b""

    def _respond(self, status: int, payload: bytes, content_type: str, **headers: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), value)
        self.end_headers()
        if payload:
            self.wfile.write(payload)
        self.last_status = status
        self.service.metrics.inc(f"service_responses_{status}")

    def _respond_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        if status == 304:  # 304 carries no body by spec
            self.send_response(status)
            self.send_header("Content-Length", "0")
            self.end_headers()
            self.last_status = 304
            self.service.metrics.inc("service_responses_304")
            return
        self._respond(status, body, "application/json")

    def _guard(self, route: str, handler) -> None:
        """Run one route inside its trace span, mapping escapes to a 500.

        The route span continues the client's ``traceparent`` context
        when one arrived; either way the request lands in the access
        accounting (histogram, access log, flight recorder) with the
        status the client actually saw.
        """
        service = self.service
        service.metrics.inc(f"service_requests_{route}")
        context = extract_traceparent(self.headers)
        self.last_status = 0
        started = time.perf_counter()
        with service.request_tracer.serve(route, context, route=route) as span:
            try:
                handler()
            except BrokenPipeError:  # client went away mid-response
                service.metrics.inc("service_client_disconnects")
            except Exception as exc:  # noqa: BLE001 — the zero-5xx budget counts these
                service.metrics.inc("service_unhandled_errors")
                try:
                    self._respond_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                except OSError:
                    pass
            if span is not None:
                span.attrs["status"] = self.last_status
                span.attrs["set_version"] = service.gateway.set_version
                span.attrs["generation"] = service.gateway.generation
        elapsed_ms = 1000.0 * (time.perf_counter() - started)
        trace_id = span.trace_id if span is not None else (
            context.trace_id if context is not None else None
        )
        service.observe_request(route, self.last_status, elapsed_ms, trace_id=trace_id)

    # -- routes -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        if url.path == "/v1/signatures":
            self._guard("fetch", lambda: self._get_signatures(url.query))
        elif url.path == "/metrics":
            self._guard(
                "metrics",
                lambda: self._respond(
                    200,
                    self.service.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4",
                ),
            )
        elif url.path == "/healthz":
            self._guard("healthz", lambda: self._respond_json(*self.service.health()))
        else:
            self._respond_json(404, {"error": f"no route {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        if url.path == "/v1/signatures":
            self._guard("publish", self._post_signatures)
        elif url.path == "/v1/screen":
            self._guard("screen", lambda: self._post_json(self.service.screen))
        elif url.path == "/v1/reports":
            self._guard("reports", lambda: self._post_json(self.service.ingest_reports))
        else:
            self._respond_json(404, {"error": f"no route {url.path}"})

    def _get_signatures(self, query: str) -> None:
        since: int | None = None
        values = parse_qs(query).get("since")
        if values:
            try:
                since = int(values[0])
            except ValueError:
                self._respond_json(400, {"error": f"bad since value {values[0]!r}"})
                return
        status, payload, version = self.service.fetch(since)
        if status != 200:
            self._respond_json(status, payload if isinstance(payload, dict) else {})
            return
        assert isinstance(payload, str)
        self._respond(
            200, payload.encode("utf-8"), "application/json", X_Set_Version=str(version)
        )

    def _post_signatures(self) -> None:
        body = self._body()
        if body is None:
            return
        self._respond_json(*self.service.publish(body.decode("utf-8", errors="replace")))

    def _post_json(self, endpoint) -> None:
        body = self._body()
        if body is None:
            return
        try:
            decoded = json.loads(body.decode("utf-8", errors="replace"))
        except json.JSONDecodeError as exc:
            self._respond_json(400, {"error": f"body is not valid JSON: {exc}"})
            return
        self._respond_json(*endpoint(decoded))


class _ListeningServer(ThreadingHTTPServer):
    # The socketserver default backlog of 5 makes a thundering herd of
    # load-harness clients retransmit SYNs (a clean +1s latency mode);
    # must be set before __init__ calls listen().
    request_queue_size = 128


class ServiceServer:
    """The listening server: a :class:`SignatureService` behind a socket.

    :param service: the state/logic bundle to serve.
    :param host: bind address.
    :param port: bind port (``0`` = ephemeral, read back from ``address``).
    """

    def __init__(self, service: SignatureService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.httpd = _ListeningServer((host, port), _ServiceHandler)
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Serve in a daemon thread; returns the bound address."""
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self.httpd.serve_forever()

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
