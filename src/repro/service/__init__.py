"""The network-facing signature service.

Everything before this package runs in-process: generation, screening,
distribution, and federation are libraries driven by a single Python
caller.  :mod:`repro.service` puts a real network boundary around them —
a stdlib-only HTTP server (``http.server`` + ``sqlite3``, no external
dependencies) that exposes:

- ``POST /v1/signatures`` — publish a checksummed signature envelope
  (monotonic versions; a stale publish gets ``409``);
- ``GET /v1/signatures`` — fetch the latest envelope, with
  ``?since=<version>`` conditional fetch answering ``304``;
- ``POST /v1/screen`` — screen events through the in-process
  :class:`~repro.serving.gateway.ScreeningGateway`, byte-identical to
  running the gateway directly;
- ``POST /v1/reports`` — fleet report ingest through
  :class:`~repro.federation.ingest.FleetIngest`;
- ``GET /metrics`` — Prometheus text from the shared
  :class:`~repro.obs.metrics.Metrics` registry;
- ``GET /healthz`` — liveness plus gateway/ingest/storage snapshots.

Persistence sits behind :class:`SignatureRepository` /
:class:`ReportRepository` interfaces with in-memory and sqlite (WAL)
implementations; envelope checksums are re-verified on every read and a
corrupt row degrades to the last known good version, mirroring
:class:`~repro.core.distribution.SignatureFetcher`.

:mod:`repro.service.loadgen` is the closed-loop socket load harness
behind ``repro service-bench`` and the committed ``BENCH_service.json``.
"""

from repro.service.loadgen import (
    ServiceBudget,
    ServiceReport,
    run_service_bench,
)
from repro.service.repository import (
    InMemoryReportRepository,
    InMemorySignatureRepository,
    ReportRepository,
    SignatureRepository,
    SqliteReportRepository,
    SqliteSignatureRepository,
    SqliteStore,
    open_repositories,
)
from repro.service.server import (
    ServiceConfig,
    ServiceServer,
    SignatureService,
)

__all__ = [
    "InMemoryReportRepository",
    "InMemorySignatureRepository",
    "ReportRepository",
    "ServiceBudget",
    "ServiceConfig",
    "ServiceReport",
    "ServiceServer",
    "SignatureRepository",
    "SignatureService",
    "SqliteReportRepository",
    "SqliteSignatureRepository",
    "SqliteStore",
    "open_repositories",
    "run_service_bench",
]
