"""Closed-loop socket load harness for the signature service.

Thousands of seeded simulated clients hammer a *live*
:class:`~repro.service.server.ServiceServer` over real TCP sockets — this
is the one bench in the repo where latency is wall-clock by design,
because the system under test includes the HTTP framing, the thread-per-
request server, and the locks around the gateway and ingest plane.

Each client is closed-loop (its next request starts when the previous
response lands) and runs a seeded per-client operation plan drawn from a
mixed workload:

- ``fetch`` — ``GET /v1/signatures`` with ``?since=`` once a version is
  known (200 and 304 both count as success);
- ``screen`` — a small tick-ordered event batch through ``POST /v1/screen``;
- ``burst`` — a same-tick event burst larger than the admission queue, so
  the gateway's DROP/DEGRADE shedding actually engages under load;
- ``report`` — valid fleet report envelopes through ``POST /v1/reports``,
  with an occasional deliberate duplicate to exercise replay defense
  (an application-level rejection, not an HTTP error).

Mid-run — once half the planned operations have completed — a publisher
thread hot-republishes a new signature envelope through the public
``POST /v1/signatures`` endpoint, then re-posts the stale boot version
and requires the ``409`` never-regress refusal.

Before the load phase the harness proves **byte-identity**: the same
seeded event stream is screened in-process and over the socket, and the
canonical JSON of both decision streams must be equal; afterwards the
republished envelope is fetched back and must equal the published
document byte-for-byte.  Latency percentiles come from the shared
:class:`~repro.obs.metrics.Histogram` estimator; the budget gates error
rate, 5xx count (zero), shed rate, identity flags, and reload count, and
the report lands in ``BENCH_service.json``.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.server import SignatureServer
from repro.eval.perf import cpu_count
from repro.federation.report import DeviceReport, encode_report, token_for
from repro.obs.context import (
    NULL_REQUEST_TRACER,
    RequestTracer,
    audit_trace_join,
    export_joined_chrome_trace,
    export_request_spans_jsonl,
    request_span_line,
)
from repro.obs.metrics import Histogram, Metrics
from repro.obs.slo import SloEngine
from repro.obs.tracer import deterministic_run_id
from repro.serving.gateway import GatewayConfig, ScreeningGateway
from repro.serving.loadgen import ScreeningEvent
from repro.service.server import (
    REQUEST_MS_BOUNDS,
    ServiceConfig,
    ServiceServer,
    SignatureService,
)
from repro.service.wire import (
    canonical_decisions,
    encode_event,
    encode_results,
    inject_traceparent,
)
from repro.signatures.store import SignatureStore
from repro.simulation.corpus import build_corpus
from repro.simulation.rng import derive_rng

#: The mixed workload: operation -> draw weight.
DEFAULT_MIX: dict[str, int] = {"fetch": 3, "screen": 4, "burst": 1, "report": 2}


@dataclass(frozen=True, slots=True)
class ServiceBudget:
    """Gates the service load bench enforces (``None`` disables a gate).

    Identity (``screen_identical`` / ``fetch_roundtrip_identical``) is
    always enforced — a service that answers differently than the
    in-process gateway, or returns different bytes than were published,
    is wrong, not slow.

    :param max_5xx: ceiling on server errors observed anywhere (client
        statuses and the server's own unhandled-error counter).
    :param max_error_rate: ceiling on unexpected non-2xx/304 responses
        (the planned stale-publish 409 is excluded).
    :param max_screen_shed_rate: ceiling on shed screening decisions.
    :param min_requests: floor proving the harness actually ran.
    :param min_reloads_applied: hot reloads the gateway must have applied.
    :param require_slo_ok: the live SLO evaluation must come back ``ok``
        (every objective inside its error budget, zero page-severity burn
        alerts).  ``None``/``False`` disables the gate.
    """

    max_5xx: int | None = 0
    max_error_rate: float | None = 0.005
    max_screen_shed_rate: float | None = 0.25
    min_requests: int | None = 100
    min_reloads_applied: int | None = 1
    require_slo_ok: bool | None = True

    def violations(self, report: "ServiceReport") -> list[str]:
        found: list[str] = []
        checks = report.checks
        if not checks.get("screen_identical"):
            found.append("socket screening decisions diverge from in-process gateway")
        if not checks.get("fetch_roundtrip_identical"):
            found.append("fetched envelope is not byte-identical to the published one")
        if "trace_join_complete" in checks and not checks["trace_join_complete"]:
            found.append("client and server request traces do not join completely")
        if self.require_slo_ok and report.slo and not report.slo.get("ok"):
            failing = sorted(
                name
                for name, section in report.slo.get("objectives", {}).items()
                if not section.get("ok")
            )
            found.append(
                f"slo violated: {report.slo.get('page_alerts', 0)} page alerts, "
                f"failing objectives {failing}"
            )
        n_5xx = report.n_5xx
        if self.max_5xx is not None and n_5xx > self.max_5xx:
            found.append(f"{n_5xx} server errors (5xx) > {self.max_5xx}")
        if self.max_error_rate is not None and report.error_rate > self.max_error_rate:
            found.append(
                f"error rate {report.error_rate:.4f} > {self.max_error_rate:.4f}"
            )
        if (
            self.max_screen_shed_rate is not None
            and report.shed_rate > self.max_screen_shed_rate
        ):
            found.append(
                f"screen shed rate {report.shed_rate:.4f} "
                f"> {self.max_screen_shed_rate:.4f}"
            )
        if self.min_requests is not None and report.n_requests < self.min_requests:
            found.append(f"{report.n_requests} requests < {self.min_requests}")
        applied = report.gateway.get("reloads_applied", 0)
        if self.min_reloads_applied is not None and applied < self.min_reloads_applied:
            found.append(
                f"{applied} hot reloads applied < {self.min_reloads_applied}"
            )
        return found

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_5xx": self.max_5xx,
            "max_error_rate": self.max_error_rate,
            "max_screen_shed_rate": self.max_screen_shed_rate,
            "min_requests": self.min_requests,
            "min_reloads_applied": self.min_reloads_applied,
            "require_slo_ok": bool(self.require_slo_ok),
        }


@dataclass(slots=True)
class ServiceReport:
    """One load-harness run, ready for ``BENCH_service.json``."""

    n_apps: int
    seed: int
    n_clients: int
    ops_per_client: int
    pool_workers: int
    server: dict[str, Any]
    workload: dict[str, Any]
    requests: dict[str, int] = field(default_factory=dict)
    status_counts: dict[str, int] = field(default_factory=dict)
    latency_ms: dict[str, dict[str, float]] = field(default_factory=dict)
    screen: dict[str, Any] = field(default_factory=dict)
    ingest: dict[str, Any] = field(default_factory=dict)
    republication: dict[str, Any] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)
    gateway: dict[str, Any] = field(default_factory=dict)
    slo: dict[str, Any] = field(default_factory=dict)
    tracing: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    budget: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return sum(self.requests.values())

    @property
    def n_5xx(self) -> int:
        observed = sum(
            count for status, count in self.status_counts.items() if status >= "500"
        )
        return observed + int(self.server.get("unhandled_errors", 0))

    @property
    def error_rate(self) -> float:
        expected = {"200", "201", "304"}
        planned_conflicts = int(self.republication.get("stale_conflicts", 0))
        unexpected = (
            sum(
                count
                for status, count in self.status_counts.items()
                if status not in expected
            )
            - planned_conflicts
        )
        return max(0, unexpected) / self.n_requests if self.n_requests else 0.0

    @property
    def shed_rate(self) -> float:
        decisions = self.screen.get("decisions", 0)
        return self.screen.get("shed", 0) / decisions if decisions else 0.0

    @property
    def identical(self) -> bool:
        return bool(
            self.checks.get("screen_identical")
            and self.checks.get("fetch_roundtrip_identical")
        )

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": "service",
            "corpus": {"n_apps": self.n_apps, "seed": self.seed},
            "cpu_count": cpu_count(),
            "server": self.server,
            "workload": self.workload,
            "n_clients": self.n_clients,
            "ops_per_client": self.ops_per_client,
            "pool_workers": self.pool_workers,
            "n_requests": self.n_requests,
            "requests": dict(sorted(self.requests.items())),
            "status_counts": dict(sorted(self.status_counts.items())),
            "error_rate": round(self.error_rate, 6),
            "n_5xx": self.n_5xx,
            "latency_ms": self.latency_ms,
            "screen": self.screen,
            "ingest": self.ingest,
            "republication": self.republication,
            "checks": self.checks,
            "gateway": self.gateway,
            "slo": self.slo,
            "tracing": self.tracing,
            "wall_s": round(self.wall_s, 3),
            "requests_per_s": round(self.n_requests / self.wall_s, 1) if self.wall_s else 0.0,
            "identical": self.identical,
            "budget": self.budget,
            "violations": self.violations,
            "ok": self.ok,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def render(self) -> str:
        """Fixed-width human summary, in the repo's report style."""
        lines = [
            "Service bench — closed-loop socket load harness",
            f"  corpus apps={self.n_apps} clients={self.n_clients} "
            f"ops/client={self.ops_per_client} pool={self.pool_workers} "
            f"backend={self.server['backend']}",
            f"  requests={self.n_requests} ({self.to_dict()['requests_per_s']}/s over "
            f"{self.wall_s:.2f}s wall)  5xx={self.n_5xx} "
            f"error_rate={self.error_rate:.4f}",
            f"  {'endpoint':<10} {'n':>7} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}",
        ]
        for name, stats in sorted(self.latency_ms.items()):
            lines.append(
                f"  {name:<10} {int(stats['count']):>7d} {stats['p50']:>8.2f} "
                f"{stats['p95']:>8.2f} {stats['p99']:>8.2f}"
            )
        lines.append(
            f"  screen: decisions={self.screen.get('decisions', 0)} "
            f"shed={self.screen.get('shed', 0)} (rate {self.shed_rate:.4f}) "
            f"by_version={self.screen.get('decisions_by_version', {})}"
        )
        lines.append(
            f"  reloads applied={self.gateway.get('reloads_applied', 0)} "
            f"rejected={self.gateway.get('reloads_rejected', 0)}; "
            f"republication at op {self.republication.get('triggered_at_ops')} "
            f"-> v{self.republication.get('set_version')} "
            f"(stale re-publish: {self.republication.get('stale_status')})"
        )
        lines.append(
            f"  checks: screen_identical={self.checks.get('screen_identical')} "
            f"fetch_roundtrip_identical={self.checks.get('fetch_roundtrip_identical')}"
        )
        if self.slo:
            parts = [
                f"{name}={section['compliance']:.4f}/{section['target']}"
                for name, section in sorted(self.slo.get("objectives", {}).items())
            ]
            lines.append(
                f"  slo: ok={self.slo.get('ok')} page_alerts={self.slo.get('page_alerts')} "
                f"ticket_alerts={self.slo.get('ticket_alerts')} " + " ".join(parts)
            )
        if self.tracing.get("enabled"):
            join = self.tracing.get("join", {})
            lines.append(
                f"  tracing: client_spans={self.tracing.get('n_client_spans')} "
                f"server_spans={self.tracing.get('n_server_spans')} "
                f"joined={join.get('n_joined')}/{join.get('n_client_requests')} "
                f"complete={join.get('complete')}"
            )
        if self.violations:
            lines.append("  BUDGET VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  budget: ok")
        return "\n".join(lines)


class _Client:
    """One closed-loop simulated client over a persistent connection."""

    def __init__(self, index: int, host: str, port: int, harness: "_Harness") -> None:
        self.index = index
        self.harness = harness
        self.connection = http.client.HTTPConnection(host, port, timeout=30.0)
        self.rng = derive_rng(harness.seed, "service-client", str(index))
        self.device_id = f"bench-device-{index:05d}"
        self.seq = 0
        self.known_version: int | None = None
        self.last_report: dict[str, Any] | None = None
        self.samples: list[tuple[str, int, float]] = []  # (op, status, ms)
        self.screen_decisions = 0
        self.screen_shed = 0
        self.decisions_by_version: dict[str, int] = {}
        self.ingest_statuses: dict[str, int] = {}

    def _request(
        self, op: str, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        with self.harness.tracer.request(op, route=op, client=self.index) as span:
            inject_traceparent(headers, span.context if span is not None else None)
            started = time.perf_counter()
            self.connection.request(method, path, body=body, headers=headers)
            response = self.connection.getresponse()
            payload = response.read()
            elapsed_ms = 1000.0 * (time.perf_counter() - started)
            if span is not None:
                span.attrs["status"] = response.status
        self.samples.append((op, response.status, elapsed_ms))
        self.harness.slo.record_request(status=response.status, ms=elapsed_ms)
        return response.status, payload

    def _packet_events(self, n: int, spacing: float) -> list[dict[str, Any]]:
        packets = self.harness.packets
        return [
            encode_event(
                ScreeningEvent(
                    seq=i,
                    tick=i * spacing,
                    device_id=self.device_id,
                    packet=packets[self.rng.randrange(len(packets))],
                )
            )
            for i in range(n)
        ]

    def _op_fetch(self) -> None:
        path = "/v1/signatures"
        if self.known_version is not None and self.rng.random() < 0.5:
            path += f"?since={self.known_version}"
        status, payload = self._request("fetch", "GET", path)
        if status == 200:
            self.known_version = SignatureStore.loads_envelope(
                payload.decode("utf-8")
            ).set_version

    def _op_screen(self, burst: bool) -> None:
        if burst:
            events = self._packet_events(self.harness.burst_events, spacing=0.0)
        else:
            events = self._packet_events(self.harness.screen_events, spacing=1.0)
        body = json.dumps({"events": events}).encode("utf-8")
        status, payload = self._request("burst" if burst else "screen", "POST", "/v1/screen", body)
        if status != 200:
            return
        decoded = json.loads(payload)
        for result in decoded["results"]:
            self.screen_decisions += 1
            if not result["screened"]:
                self.screen_shed += 1
            self.harness.slo.record_decision(shed=not result["screened"])
            version = str(result["set_version"])
            self.decisions_by_version[version] = self.decisions_by_version.get(version, 0) + 1

    def _op_report(self) -> None:
        packets = self.harness.packets
        records: list[dict[str, Any]] = []
        # Every fourth report post re-sends the previous envelope first —
        # an at-least-once transport re-delivering; the service must
        # reject it as a duplicate without an HTTP error.
        if self.last_report is not None and self.rng.random() < 0.25:
            records.append(self.last_report)
        for __ in range(self.harness.reports_per_post):
            self.seq += 1
            packet = packets[self.rng.randrange(len(packets))]
            records.append(
                encode_report(
                    DeviceReport(
                        device_id=self.device_id,
                        seq=self.seq,
                        token=token_for(packet),
                        packet=packet,
                    )
                )
            )
        self.last_report = records[-1]
        body = json.dumps({"reports": records}).encode("utf-8")
        status, payload = self._request("report", "POST", "/v1/reports", body)
        if status != 200:
            return
        for verdict in json.loads(payload)["results"]:
            name = verdict["status"]
            self.ingest_statuses[name] = self.ingest_statuses.get(name, 0) + 1

    def run(self) -> None:
        try:
            ops, weights = self.harness.mix_ops, self.harness.mix_weights
            for __ in range(self.harness.ops_per_client):
                op = self.rng.choices(ops, weights=weights, k=1)[0]
                if op == "fetch":
                    self._op_fetch()
                elif op == "screen":
                    self._op_screen(burst=False)
                elif op == "burst":
                    self._op_screen(burst=True)
                else:
                    self._op_report()
                self.harness.note_op_done()
        finally:
            self.connection.close()


class _Harness:
    """Shared state for one load run: trigger counter and workload knobs."""

    def __init__(
        self,
        *,
        seed: int,
        packets: list,
        ops_per_client: int,
        n_clients: int,
        mix: dict[str, int],
        screen_events: int,
        burst_events: int,
        reports_per_post: int,
        tracer: RequestTracer | None = None,
        slo: SloEngine | None = None,
    ) -> None:
        self.seed = seed
        self.packets = packets
        self.ops_per_client = ops_per_client
        self.mix_ops = sorted(mix)
        self.mix_weights = [mix[op] for op in self.mix_ops]
        self.screen_events = screen_events
        self.burst_events = burst_events
        self.reports_per_post = reports_per_post
        self.tracer = tracer or NULL_REQUEST_TRACER
        self.slo = slo or SloEngine()
        self.total_ops = ops_per_client * n_clients
        self.republish_at = max(1, self.total_ops // 2)
        self._done = 0
        self._lock = threading.Lock()
        self.republish_trigger = threading.Event()

    def note_op_done(self) -> None:
        with self._lock:
            self._done += 1
            if self._done >= self.republish_at:
                self.republish_trigger.set()


def run_service_bench(
    *,
    n_apps: int = 120,
    n_clients: int = 1000,
    ops_per_client: int = 6,
    sample: int = 120,
    seed: int = 0,
    pool_workers: int = 32,
    db_path: str | None = None,
    mix: dict[str, int] | None = None,
    screen_events: int = 4,
    burst_events: int | None = None,
    reports_per_post: int = 2,
    gateway_config: GatewayConfig | None = None,
    budget: ServiceBudget | None = None,
    trace_dir: str | Path | None = None,
) -> ServiceReport:
    """Boot a live service, hammer it, audit identity, gate the budget.

    :param db_path: sqlite file for the service's durable state; when
        omitted a temporary database is created (and cleaned up), so the
        bench always exercises the sqlite repository path.
    :param burst_events: events per burst screen; defaults to the
        admission queue capacity + 16, guaranteeing shedding engages.
    :param trace_dir: when given, end-to-end tracing switches on: clients
        stamp ``traceparent``, the server records span trees, and the
        directory receives ``client_spans.jsonl`` / ``server_spans.jsonl``
        / the joined cross-process ``trace_joined.json`` / the access log
        / any flight-recorder dumps.  The client↔server join audit then
        becomes a gated check.
    """
    budget = budget or ServiceBudget()
    mix = dict(mix or DEFAULT_MIX)
    gateway_config = gateway_config or GatewayConfig()
    if burst_events is None:
        burst_events = gateway_config.queue_capacity + 16
    trace_path = Path(trace_dir) if trace_dir is not None else None
    if trace_path is not None:
        trace_path.mkdir(parents=True, exist_ok=True)

    corpus = build_corpus(n_apps=n_apps, seed=seed)
    generation_server = SignatureServer(corpus.payload_check())
    generation_server.ingest(corpus.trace)
    boot_signatures = list(generation_server.generate(sample, seed=seed).signatures)
    reload_signatures = list(
        generation_server.generate(sample, seed=seed + 1).signatures
    )
    boot_document = SignatureStore.dumps_envelope(boot_signatures, 1)
    reload_document = SignatureStore.dumps_envelope(reload_signatures, 2)

    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        actual_db = db_path or str(Path(tmp) / "service.sqlite3")
        service = SignatureService(
            boot_signatures,
            db_path=actual_db,
            config=ServiceConfig(
                gateway=gateway_config,
                seed=seed,
                tracing=trace_path is not None,
                access_log_path=(
                    str(trace_path / "access_log.jsonl") if trace_path is not None else None
                ),
            ),
        )
        server = ServiceServer(service)
        host, port = server.start()
        try:
            report = _run_against(
                server,
                host,
                port,
                corpus=corpus,
                n_apps=n_apps,
                seed=seed,
                n_clients=n_clients,
                ops_per_client=ops_per_client,
                pool_workers=pool_workers,
                mix=mix,
                screen_events=screen_events,
                burst_events=burst_events,
                reports_per_post=reports_per_post,
                boot_signatures=boot_signatures,
                boot_document=boot_document,
                reload_document=reload_document,
                gateway_config=gateway_config,
                budget=budget,
                trace_dir=trace_path,
            )
        finally:
            server.stop()
            if service.store is not None:
                service.store.close()
    report.violations = budget.violations(report)
    return report


def _http(
    host: str, port: int, method: str, path: str, body: bytes | None = None
) -> tuple[int, bytes]:
    """One standalone request on a fresh connection (harness plumbing)."""
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _screen_identity_check(
    host: str,
    port: int,
    corpus,
    boot_signatures: list,
    gateway_config: GatewayConfig,
    seed: int,
) -> bool:
    """The byte-identity audit: socket decisions == in-process decisions."""
    rng = derive_rng(seed, "service-identity")
    packets = list(corpus.trace.packets)
    events = [
        ScreeningEvent(
            seq=i,
            tick=float(i),
            device_id="identity-probe",
            packet=packets[rng.randrange(len(packets))],
        )
        for i in range(64)
    ]
    reference = ScreeningGateway(list(boot_signatures), config=gateway_config)
    expected = canonical_decisions(encode_results(reference.run(list(events))))
    body = json.dumps({"events": [encode_event(e) for e in events]}).encode("utf-8")
    status, payload = _http(host, port, "POST", "/v1/screen", body)
    if status != 200:
        return False
    actual = canonical_decisions(json.loads(payload)["results"])
    return actual == expected


def _run_against(
    server: ServiceServer,
    host: str,
    port: int,
    *,
    corpus,
    n_apps: int,
    seed: int,
    n_clients: int,
    ops_per_client: int,
    pool_workers: int,
    mix: dict[str, int],
    screen_events: int,
    burst_events: int,
    reports_per_post: int,
    boot_signatures: list,
    boot_document: str,
    reload_document: str,
    gateway_config: GatewayConfig,
    budget: ServiceBudget,
    trace_dir: Path | None = None,
) -> ServiceReport:
    service = server.service
    checks: dict[str, bool] = {}
    tracing_enabled = trace_dir is not None
    client_tracer = (
        RequestTracer("client", run_id=deterministic_run_id(seed, "service-clients"))
        if tracing_enabled
        else NULL_REQUEST_TRACER
    )
    slo = SloEngine()

    # Identity audits run against generation 1, before any reload.
    checks["screen_identical"] = _screen_identity_check(
        host, port, corpus, boot_signatures, gateway_config, seed
    )
    status, payload = _http(host, port, "GET", "/v1/signatures")
    checks["boot_fetch_identical"] = (
        status == 200 and payload.decode("utf-8") == boot_document
    )

    harness = _Harness(
        seed=seed,
        packets=list(corpus.trace.packets),
        ops_per_client=ops_per_client,
        n_clients=n_clients,
        mix=mix,
        screen_events=screen_events,
        burst_events=burst_events,
        reports_per_post=reports_per_post,
        tracer=client_tracer,
        slo=slo,
    )
    republication: dict[str, Any] = {
        "triggered_at_ops": harness.republish_at,
        "set_version": None,
        "status": None,
        "stale_status": None,
        "stale_conflicts": 0,
    }

    def publisher() -> None:
        if not harness.republish_trigger.wait(timeout=600.0):
            return
        status, payload = _http(
            host, port, "POST", "/v1/signatures", reload_document.encode("utf-8")
        )
        republication["status"] = status
        if status == 201:
            republication["set_version"] = json.loads(payload)["set_version"]
        # Never-regress over the wire: re-publishing the boot version must
        # be refused with a 409 (and nothing about the live set changes).
        stale_status, __ = _http(
            host, port, "POST", "/v1/signatures", boot_document.encode("utf-8")
        )
        republication["stale_status"] = stale_status
        if stale_status == 409:
            republication["stale_conflicts"] = 1

    publisher_thread = threading.Thread(target=publisher, name="service-publisher")
    publisher_thread.start()

    clients = [_Client(i, host, port, harness) for i in range(n_clients)]
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=pool_workers) as pool:
        futures = [pool.submit(client.run) for client in clients]
        for future in futures:
            future.result()
    wall_s = time.perf_counter() - started
    harness.republish_trigger.set()  # belt-and-braces for tiny runs
    publisher_thread.join(timeout=60.0)

    # Post-load audits: round-trip the republished envelope, health, metrics.
    status, payload = _http(host, port, "GET", "/v1/signatures")
    checks["fetch_roundtrip_identical"] = status == 200 and payload.decode("utf-8") == (
        reload_document if republication["status"] == 201 else boot_document
    )
    status, payload = _http(host, port, "GET", "/healthz")
    health = json.loads(payload) if status == 200 else {}
    checks["healthz_ok"] = bool(health.get("ok"))
    status, payload = _http(host, port, "GET", "/metrics")
    checks["metrics_exposed"] = (
        status == 200 and b"repro_service_requests_" in payload
    )

    # Cross-process trace join: every client request span must reach its
    # server span tree through the propagated trace id.
    tracing: dict[str, Any] = {"enabled": tracing_enabled}
    if tracing_enabled:
        client_records = [request_span_line(s) for s in client_tracer.closed_spans]
        server_records = [request_span_line(s) for s in service.request_tracer.closed_spans]
        join = audit_trace_join(client_records, server_records)
        checks["trace_join_complete"] = join["complete"]
        tracing.update(
            {
                "n_client_spans": len(client_records),
                "n_server_spans": len(server_records),
                "join": join,
            }
        )
        assert trace_dir is not None
        export_request_spans_jsonl(client_tracer, trace_dir / "client_spans.jsonl")
        export_request_spans_jsonl(service.request_tracer, trace_dir / "server_spans.jsonl")
        export_joined_chrome_trace(
            {"client": client_records, "server": server_records},
            trace_dir / "trace_joined.json",
        )
        if service.flight_recorder.enabled:
            service.flight_recorder.export_jsonl(trace_dir / "flight_recorder.jsonl")
        service.close_access_log()

    # Aggregate client samples through the shared histogram estimator.
    registry = Metrics()
    requests: dict[str, int] = {}
    status_counts: dict[str, int] = {}
    screen_decisions = 0
    screen_shed = 0
    decisions_by_version: dict[str, int] = {}
    ingest_statuses: dict[str, int] = {}
    for client in clients:
        for op, code, ms in client.samples:
            requests[op] = requests.get(op, 0) + 1
            status_counts[str(code)] = status_counts.get(str(code), 0) + 1
            registry.observe("all", ms, REQUEST_MS_BOUNDS)
            registry.observe(op, ms, REQUEST_MS_BOUNDS)
        screen_decisions += client.screen_decisions
        screen_shed += client.screen_shed
        for version, count in client.decisions_by_version.items():
            decisions_by_version[version] = decisions_by_version.get(version, 0) + count
        for name, count in client.ingest_statuses.items():
            ingest_statuses[name] = ingest_statuses.get(name, 0) + count

    def percentiles(histogram: Histogram) -> dict[str, float]:
        return {
            "count": histogram.count,
            "p50": round(histogram.percentile(0.50), 3),
            "p95": round(histogram.percentile(0.95), 3),
            "p99": round(histogram.percentile(0.99), 3),
            "mean": round(histogram.mean, 3),
            "max": round(histogram.max_value, 3),
        }

    gateway_health = service.gateway.health_snapshot()
    report = ServiceReport(
        n_apps=n_apps,
        seed=seed,
        n_clients=n_clients,
        ops_per_client=ops_per_client,
        pool_workers=pool_workers,
        server={
            "backend": "sqlite" if service.store is not None else "memory",
            "schema_version": service.store.schema_version() if service.store else 0,
            "queue_capacity": gateway_config.queue_capacity,
            "batch_size": gateway_config.batch_size,
            "n_shards": gateway_config.n_shards,
            "shed_policy": gateway_config.shed_policy.value,
            "unhandled_errors": service.metrics.counters.get(
                "service_unhandled_errors", 0
            ),
        },
        workload={
            "mix": dict(sorted(mix.items())),
            "screen_events": screen_events,
            "burst_events": burst_events,
            "reports_per_post": reports_per_post,
        },
        requests=requests,
        status_counts=status_counts,
        latency_ms={
            name: percentiles(histogram)
            for name, histogram in sorted(registry.histograms.items())
        },
        screen={
            "decisions": screen_decisions,
            "shed": screen_shed,
            "decisions_by_version": dict(sorted(decisions_by_version.items())),
        },
        ingest={
            "client_observed": dict(sorted(ingest_statuses.items())),
            "server": service.ingest.stats(),
            "stored_reports": service.reports.count(),
        },
        republication=republication,
        checks=checks,
        gateway=gateway_health,
        slo=slo.report(),
        tracing=tracing,
        wall_s=wall_s,
        budget=budget.to_dict(),
    )
    return report
