"""Persistence behind the signature service: repositories over two backends.

The service's durable state is deliberately tiny — published signature
envelopes and accepted fleet reports — but it must survive restarts and
tolerate the same corruption the distribution channel tolerates.  Both
stores hide behind small repository interfaces so the HTTP layer (and the
tests) never touch a backend directly:

- :class:`SignatureRepository` — append-only version history of published
  :class:`~repro.signatures.store.SignatureEnvelope` documents.  Writes
  verify the envelope (checksum, monotonic ``set_version``) before
  anything is persisted; reads **re-verify the checksum** and degrade to
  the newest still-valid version when a row is corrupt — the same
  last-known-good posture as
  :class:`~repro.core.distribution.SignatureFetcher`, applied to disk
  instead of the network.  The stored document text round-trips verbatim,
  so a fetch through the service returns byte-identical JSON to what was
  published.
- :class:`ReportRepository` — accepted fleet reports (post-ingest, so
  everything stored already passed validation and replay defense), keyed
  ``(device_id, seq)`` with per-token support counts for aggregation.

Two implementations each: in-memory (tests, ephemeral servers) and sqlite
(:class:`SqliteSignatureRepository` / :class:`SqliteReportRepository`)
sharing one :class:`SqliteStore` — WAL journal mode so readers never block
behind the writer, per-thread connections (the HTTP server is
thread-per-request), and a **versioned schema**: every migration is a row
in ``schema_migrations``, applied exactly once no matter how many times
the database is opened.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ServiceError, SignatureStoreError
from repro.signatures.store import SignatureEnvelope, SignatureStore

#: Schema migrations, applied in order; the index + 1 is the schema
#: version recorded in ``schema_migrations``.  Append-only — editing a
#: shipped migration is schema drift, add a new one instead.
MIGRATIONS: tuple[tuple[str, ...], ...] = (
    (
        """
        CREATE TABLE signature_envelopes (
            set_version INTEGER PRIMARY KEY,
            checksum    TEXT NOT NULL,
            document    TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE device_reports (
            device_id TEXT NOT NULL,
            seq       INTEGER NOT NULL,
            token     TEXT NOT NULL,
            record    TEXT NOT NULL,
            PRIMARY KEY (device_id, seq)
        )
        """,
    ),
    ("CREATE INDEX idx_device_reports_token ON device_reports (token)",),
)


# ---------------------------------------------------------------------------
# interfaces
# ---------------------------------------------------------------------------


class SignatureRepository(ABC):
    """Durable, versioned storage of published signature envelopes."""

    @abstractmethod
    def store(self, document: str) -> SignatureEnvelope:
        """Verify and persist one envelope document.

        :param document: the serialized format-2 envelope exactly as
            published (stored verbatim for byte-identical fetch).
        :raises SignatureStoreError: when the document fails envelope
            verification (bad JSON, checksum, count).
        :raises ServiceError: when ``set_version`` does not advance the
            stored history (publishes must be monotonic).
        """

    @abstractmethod
    def latest_version(self) -> int:
        """Newest *stored* ``set_version`` (0 when empty); no verification."""

    @abstractmethod
    def latest(self) -> tuple[str, SignatureEnvelope] | None:
        """The newest envelope that still verifies, with its document text.

        Corrupt rows (checksum mismatch on read) are skipped — the
        repository degrades to the last known-good version rather than
        serving poison, counting the skips in :meth:`corrupt_reads`.
        ``None`` when nothing valid is stored.
        """

    @abstractmethod
    def get(self, set_version: int) -> tuple[str, SignatureEnvelope] | None:
        """One stored version, verified on read; ``None`` if absent/corrupt."""

    @abstractmethod
    def versions(self) -> list[int]:
        """All stored versions, ascending (corrupt rows included)."""

    @abstractmethod
    def corrupt_reads(self) -> int:
        """How many stored rows have failed read-time verification so far."""


class ReportRepository(ABC):
    """Durable storage of ingest-accepted fleet reports."""

    @abstractmethod
    def add(self, device_id: str, seq: int, token: str, record: dict[str, Any]) -> bool:
        """Persist one accepted report envelope.

        :returns: ``False`` when ``(device_id, seq)`` is already stored
            (idempotent re-delivery after an acked write), ``True`` on a
            fresh insert.
        """

    @abstractmethod
    def count(self) -> int:
        """Total stored reports."""

    @abstractmethod
    def token_support(self) -> dict[str, int]:
        """Distinct-device support per token (the k-anonymity numerator)."""


# ---------------------------------------------------------------------------
# in-memory backend
# ---------------------------------------------------------------------------


class InMemorySignatureRepository(SignatureRepository):
    """Dict-backed history for ephemeral servers and tests."""

    def __init__(self) -> None:
        self._documents: dict[int, str] = {}
        self._corrupt_reads = 0
        self._lock = threading.Lock()

    def store(self, document: str) -> SignatureEnvelope:
        envelope = SignatureStore.loads_envelope(document)
        with self._lock:
            newest = max(self._documents, default=0)
            if envelope.set_version <= newest:
                raise ServiceError(
                    f"stale publish: set_version {envelope.set_version} "
                    f"<= stored {newest}"
                )
            self._documents[envelope.set_version] = document
        return envelope

    def latest_version(self) -> int:
        with self._lock:
            return max(self._documents, default=0)

    def _verify(self, version: int) -> tuple[str, SignatureEnvelope] | None:
        document = self._documents.get(version)
        if document is None:
            return None
        try:
            return document, SignatureStore.loads_envelope(document)
        except SignatureStoreError:
            self._corrupt_reads += 1
            return None

    def latest(self) -> tuple[str, SignatureEnvelope] | None:
        with self._lock:
            for version in sorted(self._documents, reverse=True):
                found = self._verify(version)
                if found is not None:
                    return found
            return None

    def get(self, set_version: int) -> tuple[str, SignatureEnvelope] | None:
        with self._lock:
            return self._verify(set_version)

    def versions(self) -> list[int]:
        with self._lock:
            return sorted(self._documents)

    def corrupt_reads(self) -> int:
        with self._lock:
            return self._corrupt_reads

    # test hook: simulate at-rest corruption of one stored version
    def corrupt(self, set_version: int, text: str) -> None:
        with self._lock:
            self._documents[set_version] = text


class InMemoryReportRepository(ReportRepository):
    """Dict-backed accepted-report store."""

    def __init__(self) -> None:
        self._records: dict[tuple[str, int], tuple[str, dict[str, Any]]] = {}
        self._lock = threading.Lock()

    def add(self, device_id: str, seq: int, token: str, record: dict[str, Any]) -> bool:
        with self._lock:
            key = (device_id, seq)
            if key in self._records:
                return False
            self._records[key] = (token, dict(record))
            return True

    def count(self) -> int:
        with self._lock:
            return len(self._records)

    def token_support(self) -> dict[str, int]:
        with self._lock:
            devices_by_token: dict[str, set[str]] = {}
            for (device_id, __), (token, __record) in self._records.items():
                devices_by_token.setdefault(token, set()).add(device_id)
            return {token: len(devices) for token, devices in sorted(devices_by_token.items())}


# ---------------------------------------------------------------------------
# sqlite backend
# ---------------------------------------------------------------------------


class SqliteStore:
    """One sqlite database file shared by both repositories.

    Connections are **per thread** (sqlite3 objects must not hop threads)
    and lazily opened against the same path; WAL journal mode lets the
    thread-per-request readers proceed while a writer transaction is open.
    Opening the store applies any unapplied migrations exactly once —
    ``schema_migrations`` rows make re-opening idempotent.

    :param path: database file path.  ``:memory:`` is rejected — each
        thread would see a different empty database; use the in-memory
        repositories for ephemeral state instead.
    """

    def __init__(self, path: str | Path) -> None:
        if str(path) == ":memory:":
            raise ServiceError(
                "SqliteStore needs a file path (per-thread connections "
                "cannot share ':memory:'); use the InMemory repositories"
            )
        self.path = Path(path)
        self._local = threading.local()
        self._write_lock = threading.Lock()
        self.migrations_applied = self._migrate()

    def connection(self) -> sqlite3.Connection:
        """This thread's connection, opened (and WAL-pinned) on first use."""
        found = getattr(self._local, "connection", None)
        if found is None:
            found = sqlite3.connect(self.path, timeout=30.0)
            found.execute("PRAGMA journal_mode=WAL")
            found.execute("PRAGMA synchronous=NORMAL")
            self._local.connection = found
        return found

    def _migrate(self) -> int:
        """Apply unapplied migrations; return how many ran this open."""
        connection = self.connection()
        applied = 0
        with self._write_lock, connection:
            connection.execute(
                "CREATE TABLE IF NOT EXISTS schema_migrations "
                "(version INTEGER PRIMARY KEY)"
            )
            done = {
                row[0]
                for row in connection.execute("SELECT version FROM schema_migrations")
            }
            for index, statements in enumerate(MIGRATIONS):
                version = index + 1
                if version in done:
                    continue
                for statement in statements:
                    connection.execute(statement)
                connection.execute(
                    "INSERT INTO schema_migrations (version) VALUES (?)", (version,)
                )
                applied += 1
        return applied

    def schema_version(self) -> int:
        """Highest applied migration version."""
        row = self.connection().execute(
            "SELECT MAX(version) FROM schema_migrations"
        ).fetchone()
        return row[0] or 0

    def write(self, statement: str, parameters: tuple[Any, ...]) -> sqlite3.Cursor:
        """One serialized write in its own transaction."""
        connection = self.connection()
        with self._write_lock, connection:
            return connection.execute(statement, parameters)

    def close(self) -> None:
        """Close this thread's connection (other threads close their own)."""
        found = getattr(self._local, "connection", None)
        if found is not None:
            found.close()
            self._local.connection = None


class SqliteSignatureRepository(SignatureRepository):
    """Envelope history in ``signature_envelopes``, verified on every read."""

    def __init__(self, store: SqliteStore) -> None:
        self.store_backend = store
        self._corrupt_reads = 0
        self._count_lock = threading.Lock()

    def store(self, document: str) -> SignatureEnvelope:
        envelope = SignatureStore.loads_envelope(document)
        newest = self.latest_version()
        if envelope.set_version <= newest:
            raise ServiceError(
                f"stale publish: set_version {envelope.set_version} <= stored {newest}"
            )
        try:
            self.store_backend.write(
                "INSERT INTO signature_envelopes (set_version, checksum, document) "
                "VALUES (?, ?, ?)",
                (envelope.set_version, envelope.checksum, document),
            )
        except sqlite3.IntegrityError as exc:  # lost a publish race
            raise ServiceError(
                f"set_version {envelope.set_version} already stored"
            ) from exc
        return envelope

    def latest_version(self) -> int:
        row = self.store_backend.connection().execute(
            "SELECT MAX(set_version) FROM signature_envelopes"
        ).fetchone()
        return row[0] or 0

    def _verify(self, document: str) -> SignatureEnvelope | None:
        try:
            return SignatureStore.loads_envelope(document)
        except SignatureStoreError:
            with self._count_lock:
                self._corrupt_reads += 1
            return None

    def latest(self) -> tuple[str, SignatureEnvelope] | None:
        rows = self.store_backend.connection().execute(
            "SELECT document FROM signature_envelopes ORDER BY set_version DESC"
        )
        for (document,) in rows:
            envelope = self._verify(document)
            if envelope is not None:
                return document, envelope
        return None

    def get(self, set_version: int) -> tuple[str, SignatureEnvelope] | None:
        row = self.store_backend.connection().execute(
            "SELECT document FROM signature_envelopes WHERE set_version = ?",
            (set_version,),
        ).fetchone()
        if row is None:
            return None
        envelope = self._verify(row[0])
        if envelope is None:
            return None
        return row[0], envelope

    def versions(self) -> list[int]:
        rows = self.store_backend.connection().execute(
            "SELECT set_version FROM signature_envelopes ORDER BY set_version"
        )
        return [row[0] for row in rows]

    def corrupt_reads(self) -> int:
        with self._count_lock:
            return self._corrupt_reads


class SqliteReportRepository(ReportRepository):
    """Accepted reports in ``device_reports``, idempotent on ``(device, seq)``."""

    def __init__(self, store: SqliteStore) -> None:
        self.store_backend = store

    def add(self, device_id: str, seq: int, token: str, record: dict[str, Any]) -> bool:
        try:
            self.store_backend.write(
                "INSERT INTO device_reports (device_id, seq, token, record) "
                "VALUES (?, ?, ?, ?)",
                (device_id, seq, token, json.dumps(record, sort_keys=True)),
            )
        except sqlite3.IntegrityError:
            return False
        return True

    def count(self) -> int:
        row = self.store_backend.connection().execute(
            "SELECT COUNT(*) FROM device_reports"
        ).fetchone()
        return row[0]

    def token_support(self) -> dict[str, int]:
        rows = self.store_backend.connection().execute(
            "SELECT token, COUNT(DISTINCT device_id) FROM device_reports "
            "GROUP BY token ORDER BY token"
        )
        return {token: support for token, support in rows}


def open_repositories(
    db_path: str | Path | None,
) -> tuple[SignatureRepository, ReportRepository, SqliteStore | None]:
    """The service's standard repository wiring.

    :param db_path: sqlite file path for durable state, or ``None`` for
        the in-memory backend (state dies with the process).
    :returns: ``(signatures, reports, store)``; ``store`` is ``None`` for
        the in-memory backend.
    """
    if db_path is None:
        return InMemorySignatureRepository(), InMemoryReportRepository(), None
    store = SqliteStore(db_path)
    return SqliteSignatureRepository(store), SqliteReportRepository(store), store


def iter_rows(store: SqliteStore, table: str) -> Iterator[tuple[Any, ...]]:
    """Debug/test helper: every row of ``table`` on this thread's connection."""
    yield from store.connection().execute(f"SELECT * FROM {table}")  # noqa: S608
