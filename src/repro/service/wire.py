"""JSON wire forms shared by the service handler, its clients, and tests.

The byte-identity contract in the service acceptance test — "screening
decisions over the socket equal in-process gateway decisions" — only
means something if both sides serialize through the *same* functions, so
the encode/decode pairs live here, imported by the HTTP handler, the
load-harness client, and the equivalence tests alike.

Everything is plain ``dict``/``list`` JSON with sorted keys where the
payload is compared byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.errors import ParseError, ServiceError
from repro.http.packet import HttpPacket
from repro.obs.context import TraceContext, parse_traceparent
from repro.serving.gateway import ServeResult
from repro.serving.loadgen import ScreeningEvent

#: The W3C trace-propagation header both sides of the socket agree on.
TRACEPARENT_HEADER = "traceparent"


def inject_traceparent(headers: dict[str, str], context: TraceContext | None) -> dict[str, str]:
    """Stamp an outgoing request's headers with the trace context.

    A ``None`` context (tracing disabled) leaves the headers untouched,
    so traced and untraced clients share one request path.
    """
    if context is not None:
        headers[TRACEPARENT_HEADER] = context.to_traceparent()
    return headers


def extract_traceparent(headers: Any) -> TraceContext | None:
    """Read the trace context from incoming headers (mapping-like).

    Absent or malformed headers yield ``None`` — the request is served
    identically, it just roots a fresh server-side trace.
    """
    getter = getattr(headers, "get", None)
    if getter is None:
        return None
    return parse_traceparent(getter(TRACEPARENT_HEADER))


def encode_event(event: ScreeningEvent) -> dict[str, Any]:
    """One gateway arrival as its wire record."""
    return {
        "seq": event.seq,
        "tick": event.tick,
        "device_id": event.device_id,
        "packet": event.packet.to_dict(),
    }


def decode_event(record: Any) -> ScreeningEvent:
    """Parse one wire record back into a :class:`ScreeningEvent`.

    :raises ServiceError: for a missing/mistyped field or unparseable
        packet (the handler maps this to HTTP 400).
    """
    if not isinstance(record, dict):
        raise ServiceError(f"event must be an object, got {type(record).__name__}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ServiceError(f"bad event seq {seq!r}")
    tick = record.get("tick")
    if not isinstance(tick, (int, float)) or isinstance(tick, bool) or tick < 0:
        raise ServiceError(f"bad event tick {tick!r}")
    device_id = record.get("device_id")
    if not isinstance(device_id, str) or not device_id:
        raise ServiceError(f"bad event device_id {device_id!r}")
    packet_record = record.get("packet")
    if not isinstance(packet_record, dict):
        raise ServiceError("missing or mistyped event packet")
    try:
        packet = HttpPacket.from_dict(packet_record)
    except (ParseError, KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"unparseable event packet: {exc}") from exc
    return ScreeningEvent(seq=seq, tick=float(tick), device_id=device_id, packet=packet)


def encode_result(result: ServeResult) -> dict[str, Any]:
    """One gateway verdict as its wire record.

    Carries everything a device needs to act on the verdict plus the
    audit fields (generation, set version, batch) the equivalence tests
    compare; the packet itself is not echoed back.
    """
    match = result.match
    return {
        "seq": result.event.seq,
        "outcome": result.outcome.value,
        "generation": result.generation,
        "set_version": result.set_version,
        "batch_id": result.batch_id,
        "completed_tick": result.completed_tick,
        "latency_ticks": result.latency_ticks,
        "screened": result.screened,
        "match": None
        if match is None
        else {
            "matched": match.matched,
            "score": match.score,
            "signature": None if match.signature is None else match.signature.to_dict(),
        },
    }


def encode_results(results: Sequence[ServeResult]) -> list[dict[str, Any]]:
    """A whole verdict stream, in gateway output order."""
    return [encode_result(result) for result in results]


def canonical_decisions(records: Sequence[dict[str, Any]]) -> str:
    """The canonical byte form decision streams are compared in."""
    return json.dumps(list(records), sort_keys=True, separators=(",", ":"))
