"""Command-line interface: the paper's workflow as shell commands.

::

    repro corpus  --apps 300 --seed 0 --out trace.jsonl --identity id.json
    repro label   --trace trace.jsonl --identity id.json
    repro generate --trace trace.jsonl --identity id.json \
                   --sample 200 --out signatures.json
    repro screen  --trace trace.jsonl --signatures signatures.json \
                   [--identity id.json]
    repro analyze --trace trace.jsonl --identity id.json \
                   --signatures signatures.json
    repro redact  --trace trace.jsonl --identity id.json --out clean.jsonl
    repro risk    --apps 300 --seed 0 --top 10
    repro export  --signatures signatures.json --format snort --out leaks.rules
    repro report  --apps 300 --seed 0
    repro fig4    --apps 300 --seed 0
    repro chaos   --apps 80 --seed 0 --rates 0,0.1,0.25,0.5
    repro bench   --apps 300 --sample 200 --workers 4 --out BENCH_perf.json
    repro stream  --apps 300 --base 256 --batch 128 --batches 14 \
                  --out BENCH_streaming.json
    repro serve   --apps 120 --events 4000 --shards 4 --out BENCH_serving.json
    repro service --apps 120 --port 8080 --db service.sqlite3
    repro service-bench --clients 1000 --ops 6 --out BENCH_service.json \
                  --trace-dir service_trace
    repro slo     --bench BENCH_service.json
    repro slo     --access-log service_trace/access_log.jsonl
    repro trace   --apps 60 --sample 40 --seed 0 --out trace_out
    repro metrics --apps 60 --events 1200 --seed 0 --out metrics_out

``serve`` and ``service`` are deliberately distinct verbs: ``serve``
runs the *offline, in-process* screening-gateway bench on simulated
ticks (no sockets); ``service`` boots the *network-facing* HTTP
signature service on a real port, and ``service-bench`` drives a live
instance with the closed-loop socket load harness.

``bench``, ``serve``, ``chaos``, ``trace``, and ``metrics`` accept
``--json`` to print their report as stable JSON instead of the table
(exit codes unchanged — ``bench``/``serve`` still exit nonzero on a
budget violation).

Trace paths ending in ``.gz`` are read/written gzip-compressed.
Every command is pure computation over files — no network, no device.
Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.dataset.stats import destination_table, fanout_cdf, fanout_summary, sensitive_table
from repro.dataset.trace import Trace
from repro.eval.metrics import compute_metrics
from repro.sensitive.identifiers import DeviceIdentity
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.matcher import SignatureMatcher
from repro.signatures.store import SignatureStore
from repro.simulation.corpus import build_corpus


def _load_identity(path: str) -> DeviceIdentity:
    return DeviceIdentity.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def emit_report(args: argparse.Namespace, text: str, payload: dict) -> None:
    """Print one report, honouring the subcommand's ``--json`` flag.

    Every reporting subcommand routes through here so the machine-readable
    path is uniform: ``--json`` prints the payload as stable (sorted-key,
    2-space-indented) JSON on stdout and suppresses the human rendering;
    exit codes are unaffected either way.
    """
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)


def add_json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true",
        help="print the report as JSON on stdout instead of the table",
    )


def cmd_corpus(args: argparse.Namespace) -> int:
    corpus = build_corpus(n_apps=args.apps, seed=args.seed)
    corpus.trace.save_jsonl(args.out)
    Path(args.identity).write_text(
        json.dumps(corpus.device.identity.to_dict(), indent=2), encoding="utf-8"
    )
    print(f"wrote {len(corpus.trace)} packets from {corpus.n_apps} apps to {args.out}")
    print(f"wrote device identity to {args.identity}")
    return 0


def cmd_label(args: argparse.Namespace) -> int:
    trace = Trace.load_jsonl(args.trace)
    check = PayloadCheck(_load_identity(args.identity))
    suspicious, normal = check.split(trace)
    print(f"packets   : {len(trace)}")
    print(f"suspicious: {len(suspicious)} ({100 * len(suspicious) / len(trace):.1f}%)")
    print(f"normal    : {len(normal)}")
    rows = sensitive_table(trace, check)
    print(f"\n{'identifier':<18} {'pkts':>7} {'apps':>5} {'dests':>6}")
    for row in sorted(rows, key=lambda r: -r.packets):
        print(f"{row.label:<18} {row.packets:>7d} {row.apps:>5d} {row.destinations:>6d}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.core.server import ServerConfig, SignatureServer

    trace = Trace.load_jsonl(args.trace)
    check = PayloadCheck(_load_identity(args.identity))
    server = SignatureServer(check, config=ServerConfig(workers=args.workers))
    n_suspicious, __ = server.ingest(trace)
    if not n_suspicious:
        print("no sensitive packets found; nothing to generate", file=sys.stderr)
        return 1
    result = server.generate(args.sample, seed=args.seed)
    SignatureStore.save(result.signatures, args.out)
    print(f"clustered {len(result.sample)} packets -> {len(result.signatures)} signatures")
    for signature in result.signatures:
        print(f"  {signature.describe()}")
    print(f"wrote {args.out}")
    return 0


def cmd_screen(args: argparse.Namespace) -> int:
    trace = Trace.load_jsonl(args.trace)
    signatures = SignatureStore.load(args.signatures)
    matcher = SignatureMatcher(signatures)
    flagged = [p for p in trace if matcher.is_sensitive(p)]
    print(f"screened {len(trace)} packets with {len(signatures)} signatures")
    print(f"flagged  {len(flagged)} ({100 * len(flagged) / max(1, len(trace)):.1f}%)")
    if args.identity:
        check = PayloadCheck(_load_identity(args.identity))
        suspicious, normal = check.split(trace)
        n_sample = min(args.sample, len(suspicious) - 1)
        metrics = compute_metrics(matcher, suspicious, normal, n_sample=max(0, n_sample))
        print(
            f"vs ground truth: TP {metrics.tp_percent:.1f}%  "
            f"FN {metrics.fn_percent:.1f}%  FP {metrics.fp_percent:.2f}%"
        )
    by_app: dict[str, int] = {}
    for packet in flagged:
        by_app[packet.app_id] = by_app.get(packet.app_id, 0) + 1
    print("\ntop flagged applications:")
    for app, count in sorted(by_app.items(), key=lambda kv: -kv[1])[:10]:
        print(f"  {app:<32} {count}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.signatures.analysis import (
        coverage_by_label,
        expected_prompt_rate,
        render_coverage,
        verbosity_report,
    )

    trace = Trace.load_jsonl(args.trace)
    check = PayloadCheck(_load_identity(args.identity))
    signatures = SignatureStore.load(args.signatures)
    suspicious, normal = check.split(trace)
    print(render_coverage(coverage_by_label(signatures, suspicious, check)))
    print(f"\nexpected prompt rate on clean traffic: "
          f"{100 * expected_prompt_rate(signatures, normal):.2f}%")
    risky = [r for r in verbosity_report(signatures) if r.risky]
    if risky:
        print("\nrisky (short, unscoped) signatures:")
        for report in risky:
            print(f"  {report.signature.describe()}")
    else:
        print("no match-everything-risk signatures found")
    return 0


def cmd_redact(args: argparse.Namespace) -> int:
    from repro.dataset.redact import TraceRedactor

    trace = Trace.load_jsonl(args.trace)
    redactor = TraceRedactor(_load_identity(args.identity))
    clean = redactor.redact_trace(trace)
    assert redactor.verify_clean(clean)
    clean.save_jsonl(args.out)
    print(f"redacted {len(trace)} packets -> {args.out} (verified clean)")
    return 0


def cmd_risk(args: argparse.Namespace) -> int:
    from repro.android.risk import rank_population, summarize

    corpus = build_corpus(n_apps=args.apps, seed=args.seed)
    histogram = summarize(corpus.apps)
    print("static permission risk (paper Section III-A):")
    for level, count in histogram.items():
        print(f"  {level.name:<9} {count:>5d}")
    print("\nmost dangerous applications:")
    for assessment in rank_population(corpus.apps)[: args.top]:
        print(f"  {assessment.package:<34} {assessment.level.name}")
        for reason in assessment.reasons:
            print(f"      - {reason}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.signatures.export import to_mitmproxy_script, to_snort_rules

    signatures = SignatureStore.load(args.signatures)
    if args.format == "mitmproxy":
        output = to_mitmproxy_script(signatures)
    else:
        output = to_snort_rules(signatures)
    Path(args.out).write_text(output, encoding="utf-8")
    print(f"exported {len(signatures)} signatures as {args.format} -> {args.out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import render_fig2, render_table1, render_table2, render_table3

    corpus = build_corpus(n_apps=args.apps, seed=args.seed)
    check = corpus.payload_check()
    scale = corpus.n_apps / 1188
    print(render_table1(corpus.apps))
    print()
    print(render_table2(destination_table(corpus.trace), scale=scale))
    print()
    print(render_table3(sensitive_table(corpus.trace, check), scale=scale))
    print()
    print(render_fig2(fanout_summary(corpus.trace), fanout_cdf(corpus.trace)))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"--rates must be comma-separated numbers, got {args.rates!r}", file=sys.stderr)
        return 2
    if not rates or any(not 0.0 <= rate < 1.0 for rate in rates):
        print(f"--rates must be one or more values in [0, 1), got {args.rates!r}", file=sys.stderr)
        return 2
    corpus = build_corpus(n_apps=args.apps, seed=args.seed)
    if args.target == "pipeline":
        from repro.eval.chaos import (
            pipeline_chaos_report,
            render_pipeline_chaos,
            run_pipeline_chaos_sweep,
        )
        from repro.supervision import PIPELINE_STAGES

        crash_stages = [s.strip() for s in args.crash_stages.split(",") if s.strip()]
        unknown = [s for s in crash_stages if s not in PIPELINE_STAGES]
        if unknown:
            print(
                f"--crash-stages must name pipeline stages {PIPELINE_STAGES}, "
                f"got {unknown}",
                file=sys.stderr,
            )
            return 2
        points = run_pipeline_chaos_sweep(
            corpus.trace,
            corpus.payload_check(),
            rates,
            crash_stages=crash_stages,
            n_sample=args.sample,
            seed=args.seed,
        )
        emit_report(args, render_pipeline_chaos(points), pipeline_chaos_report(points))
        # The exact-recovery invariant is the whole point of this sweep;
        # CI keys off the exit status.
        return 0 if all(point.invariant_holds for point in points) else 1
    if args.target == "federation":
        from repro.eval.chaos import (
            federation_chaos_report,
            render_federation_chaos,
            run_federation_chaos_sweep,
        )

        points = run_federation_chaos_sweep(
            corpus,
            rates,
            n_devices=args.devices,
            reports_per_device=args.reports,
            min_support=args.min_support,
            seed=args.seed,
        )
        emit_report(args, render_federation_chaos(points), federation_chaos_report(points))
        # Byte-identity under device faults is this sweep's invariant;
        # CI keys off the exit status.
        return 0 if all(point.invariant_holds for point in points) else 1
    from repro.eval.chaos import chaos_report, render_chaos, run_chaos_sweep

    points = run_chaos_sweep(
        corpus.trace,
        corpus.payload_check(),
        rates,
        n_sample=args.sample,
        n_devices=args.devices,
        seed=args.seed,
    )
    emit_report(args, render_chaos(points), chaos_report(points))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval.perf import PerfBudget, run_perf_bench

    if args.quick:
        # Smoke configuration: a small corpus, and only the correctness
        # gate — timing floors are meaningless at smoke scale.
        n_apps = min(args.apps, 60)
        sample = min(args.sample, 40)
        screen = min(args.screen, 1500)
        budget = PerfBudget(
            min_parallel_speedup=None, min_engine_speedup=None, min_pair_hit_rate=None
        )
    else:
        n_apps, sample, screen = args.apps, args.sample, args.screen
        budget = PerfBudget(
            min_parallel_speedup=args.budget_speedup,
            min_engine_speedup=args.budget_engine_speedup,
        )
    report = run_perf_bench(
        n_apps=n_apps,
        sample=sample,
        workers=args.workers,
        seed=args.seed,
        screen_packets=screen,
        budget=budget,
    )
    emit_report(args, report.render(), report.to_dict())
    if args.out:
        report.save(args.out)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if report.ok else 1


def cmd_stream(args: argparse.Namespace) -> int:
    from repro.distance.blocking import BlockingMode
    from repro.eval.streaming import StreamingBudget, run_streaming_bench

    if args.quick:
        # Smoke configuration: the exactness audit and sub-linearity
        # gates still apply in full — only the corpus scale shrinks (and
        # with it the >=10x scale floor, meaningless at smoke size).
        n_apps = min(args.apps, 60)
        base = min(args.base, 80)
        batch = min(args.batch, 40)
        batches = min(args.batches, 6)
        budget = StreamingBudget(min_scale=None)
    else:
        n_apps, base, batch, batches = args.apps, args.base, args.batch, args.batches
        budget = StreamingBudget(
            min_scale=args.budget_scale,
            max_attach_tail_ratio=args.budget_tail_ratio,
            max_pair_fraction=args.budget_pair_fraction,
        )
    report = run_streaming_bench(
        n_apps=n_apps,
        base=base,
        batch_size=batch,
        batches=batches,
        threshold=args.threshold,
        mode=BlockingMode(args.mode),
        compact_every=args.compact_every,
        workers=args.workers,
        seed=args.seed,
        budget=budget,
    )
    emit_report(args, report.render(), report.to_dict())
    if args.out:
        report.save(args.out)
        if not args.json:
            print(f"wrote {args.out}")
    if args.audit_out:
        report.save_audit(args.audit_out)
        if not args.json:
            print(f"wrote {args.audit_out}")
    return 0 if report.ok else 1


def cmd_arena(args: argparse.Namespace) -> int:
    from repro.arena import ArenaBudget, run_arena

    if args.quick:
        # Smoke configuration: every recovery gate still applies in full
        # — only the corpus/round scale shrinks.
        n_apps = min(args.apps, 60)
        rounds = min(args.rounds, 4)
        train = min(args.train, 96)
        leak = min(args.leak, 64)
        benign = min(args.benign, 96)
    else:
        n_apps, rounds = args.apps, args.rounds
        train, leak, benign = args.train, args.leak, args.benign
    budget = ArenaBudget(
        max_rounds_to_recovery=args.budget_recovery,
        max_evasion_half_life=args.budget_half_life,
        max_fp_regression=args.budget_fp_regression,
    )
    families = [f.strip() for f in args.families.split(",") if f.strip()] or None
    report = run_arena(
        n_apps=n_apps,
        seed=args.seed,
        rounds=rounds,
        train=train,
        leak=leak,
        benign=benign,
        families=families,
        epsilon=args.epsilon,
        threshold=args.threshold,
        workers=args.workers,
        budget=budget,
    )
    emit_report(args, report.render(), report.to_dict())
    if args.out:
        report.save(args.out)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.bench import ServingBudget, run_serving_bench
    from repro.serving.gateway import ShedPolicy

    if args.quick:
        # Smoke configuration: small corpus and stream; the equivalence
        # and reload gates still apply — only scale shrinks.
        n_apps = min(args.apps, 60)
        events = min(args.events, 1200)
        sample = min(args.sample, 40)
    else:
        n_apps, events, sample = args.apps, args.events, args.sample
    report = run_serving_bench(
        n_apps=n_apps,
        events=events,
        sample=sample,
        seed=args.seed,
        batch_size=args.batch,
        n_shards=args.shards,
        queue_capacity=args.queue,
        shed_policy=ShedPolicy(args.policy),
        budget=ServingBudget(),
        telemetry_dir=args.telemetry or None,
    )
    emit_report(args, report.render(), report.to_dict())
    if args.out:
        report.save(args.out)
        if not args.json:
            print(f"wrote {args.out}")
    if args.telemetry and not args.json:
        print(f"wrote telemetry JSONL under {args.telemetry}/")
    return 0 if report.ok else 1


def _boot_signatures(args: argparse.Namespace) -> list:
    """Boot set for ``repro service``: a file if given, else generated."""
    if args.signatures:
        return SignatureStore.load(args.signatures)
    from repro.core.server import SignatureServer

    corpus = build_corpus(n_apps=args.apps, seed=args.seed)
    server = SignatureServer(corpus.payload_check())
    server.ingest(corpus.trace)
    return list(server.generate(args.sample, seed=args.seed).signatures)


def cmd_service(args: argparse.Namespace) -> int:
    from repro.service.server import ServiceServer, SignatureService

    service = SignatureService(_boot_signatures(args), db_path=args.db or None)
    server = ServiceServer(service, host=args.host, port=args.port)
    host, port = server.address  # bound at construction, before serving
    if args.ready_file:
        # CI and scripts bind port 0 and read the real address from here.
        Path(args.ready_file).write_text(f"{host}:{port}\n", encoding="utf-8")
    print(f"repro service listening on http://{host}:{port} "
          f"(backend={'sqlite' if service.store is not None else 'memory'})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        if service.store is not None:
            service.store.close()
    return 0


def cmd_service_bench(args: argparse.Namespace) -> int:
    from repro.service.loadgen import ServiceBudget, run_service_bench

    if args.quick:
        # Smoke configuration: a small fleet of clients; the identity,
        # zero-5xx, and shed-rate gates still apply — only scale shrinks.
        n_apps = min(args.apps, 40)
        n_clients = min(args.clients, 60)
        sample = min(args.sample, 40)
        budget = ServiceBudget(min_requests=100)
    else:
        n_apps, n_clients, sample = args.apps, args.clients, args.sample
        budget = ServiceBudget(min_requests=max(100, n_clients * args.ops // 2))
    report = run_service_bench(
        n_apps=n_apps,
        n_clients=n_clients,
        ops_per_client=args.ops,
        sample=sample,
        seed=args.seed,
        pool_workers=args.pool,
        budget=budget,
        trace_dir=args.trace_dir or None,
    )
    emit_report(args, report.render(), report.to_dict())
    if args.out:
        report.save(args.out)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if report.ok else 1


def _render_slo(payload: dict) -> str:
    """Human rendering of one SLO report section."""
    verdict = "OK" if payload.get("ok") else "VIOLATED"
    lines = [
        f"SLO report — {verdict} "
        f"(page_alerts={payload.get('page_alerts', 0)} "
        f"ticket_alerts={payload.get('ticket_alerts', 0)})",
        f"  {'objective':<16} {'kind':<12} {'target':>8} {'compliance':>11} "
        f"{'budget left':>12} {'ok':>4}",
    ]
    objectives = payload.get("objectives") or {}
    for name in sorted(objectives):
        obj = objectives[name]
        budget = obj.get("budget") or {}
        lines.append(
            f"  {name:<16} {obj.get('kind', '?'):<12} {obj.get('target', 0):>8} "
            f"{obj.get('compliance', 0):>11.6f} "
            f"{budget.get('remaining', 0):>12} "
            f"{'yes' if obj.get('ok') else 'NO':>4}"
        )
    return "\n".join(lines)


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.eval.benchcheck import check_slo_section
    from repro.obs.slo import replay_access_log

    if bool(args.bench) == bool(args.access_log):
        print("slo: pass exactly one of --bench or --access-log", file=sys.stderr)
        return 2
    if args.bench:
        report = json.loads(Path(args.bench).read_text(encoding="utf-8"))
        section = report.get("slo") if report.get("bench") != "slo" else report
        if not isinstance(section, dict):
            print(f"{args.bench}: no 'slo' section found", file=sys.stderr)
            return 2
        payload = dict(section)
        payload.setdefault("bench", "slo")
        payload["source"] = str(args.bench)
    else:
        engine = replay_access_log(args.access_log)
        payload = engine.report()
        payload["bench"] = "slo"
        payload["source"] = str(args.access_log)
    problems = check_slo_section(payload)
    text = _render_slo(payload)
    if problems:
        text += "\n" + "\n".join(f"  problem: {p}" for p in problems)
    emit_report(args, text, payload)
    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if not problems else 1


def cmd_federate(args: argparse.Namespace) -> int:
    from repro.federation.bench import FederationBudget, run_federation_bench

    if args.quick:
        # Smoke configuration: a small fleet; the precision and purity
        # gates still apply — only scale (and the throughput floor) shrinks.
        n_apps = min(args.apps, 24)
        n_devices = min(args.devices, 300)
        single_reports = min(args.single_reports, 128)
        budget = FederationBudget(min_throughput_per_s=None)
    else:
        n_apps, n_devices, single_reports = args.apps, args.devices, args.single_reports
        budget = FederationBudget()
    report = run_federation_bench(
        n_apps=n_apps,
        n_devices=n_devices,
        reports_per_device=args.reports,
        single_device_reports=single_reports,
        min_support=args.min_support,
        fault_rate=args.rate,
        seed=args.seed,
        n_shards=args.shards,
        budget=budget,
    )
    emit_report(args, report.render(), report.to_dict())
    if args.out:
        report.save(args.out)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.scenarios import run_traced_pipeline

    artifacts = run_traced_pipeline(
        n_apps=args.apps,
        sample=args.sample,
        seed=args.seed,
        workers=args.workers,
        out_dir=args.out,
    )
    lines = [artifacts.profile.render(), ""]
    lines.extend(
        f"wrote {artifacts.paths[key]}" for key in ("spans", "chrome", "metrics", "stages")
    )
    lines.append("open trace.json in chrome://tracing or https://ui.perfetto.dev")
    payload = dict(artifacts.summary)
    payload["artifacts"] = {key: str(path) for key, path in sorted(artifacts.paths.items())}
    payload["stages"] = artifacts.profile.to_dict()
    emit_report(args, "\n".join(lines), payload)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.scenarios import run_traced_serving

    artifacts = run_traced_serving(
        n_apps=args.apps,
        events=args.events,
        sample=args.sample,
        seed=args.seed,
        out_dir=args.out,
    )
    metrics = artifacts.obs.metrics
    lines = [
        f"Serving metrics — run {artifacts.summary['run_id']}",
        f"  events={artifacts.summary['events']} "
        f"screened={artifacts.summary['screened']} shed={artifacts.summary['shed']}",
        f"  {'counter':<32} {'value':>10}",
    ]
    lines.extend(
        f"  {name:<32} {count:>10d}" for name, count in sorted(metrics.counters.items())
    )
    lines.append("")
    lines.extend(f"wrote {path}" for __, path in sorted(artifacts.paths.items()))
    payload = dict(artifacts.summary)
    payload["artifacts"] = {key: str(path) for key, path in sorted(artifacts.paths.items())}
    payload["gauges"] = dict(sorted(metrics.gauges.items()))
    emit_report(args, "\n".join(lines), payload)
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    from repro.eval.experiments import run_fig4_sweep, scaled_sweep
    from repro.eval.report import render_fig4

    corpus = build_corpus(n_apps=args.apps, seed=args.seed)
    check = corpus.payload_check()
    suspicious, __ = check.split(corpus.trace)
    sizes = scaled_sweep(len(suspicious))
    points = run_fig4_sweep(corpus.trace, check, sizes, seed=args.seed)
    print(render_fig4(points))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Signature generation for sensitive information leakage "
        "in Android application HTTP traffic (Kuzuno & Tonami 2013, reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="build a synthetic corpus and save the trace")
    p.add_argument("--apps", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="trace.jsonl")
    p.add_argument("--identity", default="identity.json")
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("label", help="payload-check a trace (Table III view)")
    p.add_argument("--trace", required=True)
    p.add_argument("--identity", required=True)
    p.set_defaults(func=cmd_label)

    p = sub.add_parser("generate", help="cluster sensitive packets, emit signatures")
    p.add_argument("--trace", required=True)
    p.add_argument("--identity", required=True)
    p.add_argument("--sample", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="distance-engine processes (0 = one per CPU)")
    p.add_argument("--out", default="signatures.json")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("screen", help="screen a trace against a signature set")
    p.add_argument("--trace", required=True)
    p.add_argument("--signatures", required=True)
    p.add_argument("--identity", default="", help="optional ground truth for metrics")
    p.add_argument("--sample", type=int, default=200, help="N used for the metric correction")
    p.set_defaults(func=cmd_screen)

    p = sub.add_parser("risk", help="static permission-risk ranking of a corpus")
    p.add_argument("--apps", type=int, default=120)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(func=cmd_risk)

    p = sub.add_parser("export", help="export signatures for external tools")
    p.add_argument("--signatures", required=True)
    p.add_argument("--format", choices=("mitmproxy", "snort"), default="mitmproxy")
    p.add_argument("--out", default="signatures_export.txt")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("analyze", help="signature-set quality analytics")
    p.add_argument("--trace", required=True)
    p.add_argument("--identity", required=True)
    p.add_argument("--signatures", required=True)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("redact", help="scrub identifiers from a trace for sharing")
    p.add_argument("--trace", required=True)
    p.add_argument("--identity", required=True)
    p.add_argument("--out", default="trace.redacted.jsonl")
    p.set_defaults(func=cmd_redact)

    p = sub.add_parser("report", help="render Tables I-III and Fig 2 for a corpus")
    p.add_argument("--apps", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("fig4", help="run the Fig 4 detection sweep")
    p.add_argument("--apps", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig4)

    p = sub.add_parser("bench", help="time the hot paths, emit BENCH_perf.json")
    p.add_argument("--apps", type=int, default=300)
    p.add_argument("--sample", type=int, default=200, help="M packets for the matrix build")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--screen", type=int, default=4000, help="packets for matcher throughput")
    p.add_argument("--quick", action="store_true",
                   help="smoke scale; enforce only serial/parallel equality")
    p.add_argument("--budget-speedup", type=float, default=2.0,
                   help="required parallel speedup (enforced when CPUs allow)")
    p.add_argument("--budget-engine-speedup", type=float, default=1.5,
                   help="required engine-vs-naive serial speedup")
    p.add_argument("--out", default="", help="write the JSON report here")
    add_json_flag(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "stream",
        help="run the streaming blocked-clustering bench + exactness audit; "
        "emits BENCH_streaming.json",
    )
    p.add_argument("--apps", type=int, default=300)
    p.add_argument("--base", type=int, default=256, help="packets in the initial load")
    p.add_argument("--batch", type=int, default=128, help="packets per extension batch")
    p.add_argument("--batches", type=int, default=14, help="extension batches")
    p.add_argument("--threshold", type=float, default=1.2,
                   help="absolute linkage height clusters are cut at")
    p.add_argument("--mode", choices=("exact", "lsh"), default="exact",
                   help="blocking prefilter: exact = provably lossless "
                        "destination bound; lsh = destination key + minhash")
    p.add_argument("--compact-every", type=int, default=4,
                   help="ingest batches between dirty-block compactions")
    p.add_argument("--workers", type=int, default=1,
                   help="distance-engine processes (0 = one per CPU)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--quick", action="store_true",
                   help="smoke scale; exactness + sub-linearity gates still apply")
    p.add_argument("--budget-scale", type=float, default=10.0,
                   help="required corpus growth over the perf-bench baseline M")
    p.add_argument("--budget-tail-ratio", type=float, default=2.0,
                   help="max per-item attach-cost growth, last batch vs first")
    p.add_argument("--budget-pair-fraction", type=float, default=0.6,
                   help="max fraction of the full pair space evaluated")
    p.add_argument("--out", default="", help="write the JSON report here")
    p.add_argument("--audit-out", default="",
                   help="write the standalone exactness-audit JSON here")
    add_json_flag(p)
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "serve",
        help="run the OFFLINE in-process screening-gateway bench on simulated "
        "ticks (no network; see 'service' for the HTTP server); emits "
        "BENCH_serving.json",
    )
    p.add_argument("--apps", type=int, default=120)
    p.add_argument("--events", type=int, default=4000, help="arrivals per scenario")
    p.add_argument("--sample", type=int, default=120, help="M packets per signature set")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch", type=int, default=8, help="micro-batch size")
    p.add_argument("--shards", type=int, default=4, help="signature shards")
    p.add_argument("--queue", type=int, default=64, help="admission queue capacity")
    p.add_argument("--policy", choices=("degrade", "drop"), default="degrade",
                   help="load-shedding policy when the queue is full")
    p.add_argument("--quick", action="store_true", help="smoke scale for CI")
    p.add_argument("--telemetry", default="", help="directory for span-log JSONL export")
    p.add_argument("--out", default="", help="write the JSON report here")
    add_json_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "arena",
        help="adversarial evasion arena: seeded attacker mutations vs the "
        "self-healing regeneration loop; emits BENCH_arena.json",
    )
    p.add_argument("--apps", type=int, default=120)
    p.add_argument("--rounds", type=int, default=6, help="attack rounds per family")
    p.add_argument("--train", type=int, default=160,
                   help="sensitive packets in the pre-attack training split")
    p.add_argument("--leak", type=int, default=96,
                   help="leaking packets mutated each round")
    p.add_argument("--benign", type=int, default=128,
                   help="benign packets interleaved each round")
    p.add_argument("--families", default="",
                   help="comma-separated mutation families (default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epsilon", type=float, default=0.05,
                   help="recall tolerance band around pre-attack recall")
    p.add_argument("--threshold", type=float, default=1.2,
                   help="absolute clustering/generation cut height")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--budget-recovery", type=int, default=3,
                   help="max rounds-to-recovery per family")
    p.add_argument("--budget-half-life", type=float, default=3.0,
                   help="max evasion half-life (rounds) per family")
    p.add_argument("--budget-fp-regression", type=float, default=0.02,
                   help="max benign FP-rate rise over the pre-attack rate")
    p.add_argument("--quick", action="store_true", help="smoke scale for CI")
    p.add_argument("--out", default="", help="write the JSON report here")
    add_json_flag(p)
    p.set_defaults(func=cmd_arena)

    p = sub.add_parser(
        "service",
        help="boot the NETWORK-FACING HTTP signature service on a real port "
        "(publish/fetch/screen/reports/metrics/healthz; see 'serve' for the "
        "offline gateway bench)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (0 = ephemeral; see --ready-file)")
    p.add_argument("--db", default="",
                   help="sqlite file for durable state (default: in-memory)")
    p.add_argument("--signatures", default="",
                   help="boot signature document (default: generate from a corpus)")
    p.add_argument("--apps", type=int, default=120,
                   help="corpus size when generating the boot set")
    p.add_argument("--sample", type=int, default=120,
                   help="M packets per generated boot set")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ready-file", default="",
                   help="write 'host:port' here once listening (for scripts/CI)")
    p.set_defaults(func=cmd_service)

    p = sub.add_parser(
        "service-bench",
        help="closed-loop socket load harness against a live service instance; "
        "emits BENCH_service.json",
    )
    p.add_argument("--apps", type=int, default=120)
    p.add_argument("--clients", type=int, default=1000, help="simulated clients")
    p.add_argument("--ops", type=int, default=6, help="operations per client")
    p.add_argument("--sample", type=int, default=120, help="M packets per signature set")
    p.add_argument("--pool", type=int, default=32, help="client thread-pool size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quick", action="store_true", help="smoke scale for CI")
    p.add_argument("--trace-dir", default="",
                   help="enable request tracing and write span logs, the joined "
                        "cross-process Chrome trace, the access log, and any "
                        "flight-recorder dumps into this directory")
    p.add_argument("--out", default="", help="write the JSON report here")
    add_json_flag(p)
    p.set_defaults(func=cmd_service_bench)

    p = sub.add_parser(
        "slo",
        help="inspect an SLO report: validate the slo section of a committed "
        "BENCH_service.json, or replay a service access log through the "
        "SLO engine",
    )
    p.add_argument("--bench", default="",
                   help="BENCH_service.json (or standalone slo report) to validate")
    p.add_argument("--access-log", default="",
                   help="service access_log.jsonl to replay through the SLO engine")
    p.add_argument("--out", default="", help="write the JSON report here")
    add_json_flag(p)
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("chaos", help="sweep fault rates over a target subsystem")
    p.add_argument("--target", choices=("distribution", "pipeline", "federation"),
                   default="distribution",
                   help="distribution = server->device channel faults; "
                        "pipeline = supervised execution under worker + stage faults; "
                        "federation = crowdsourced ingest under device faults")
    p.add_argument("--apps", type=int, default=80)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sample", type=int, default=60)
    p.add_argument("--devices", type=int, default=6)
    p.add_argument("--rates", default="0,0.1,0.25,0.5",
                   help="comma-separated fault rates in [0,1) (chunk-fault "
                        "rates for --target pipeline)")
    p.add_argument("--crash-stages", default="payload_check,distance_matrix,cut",
                   help="pipeline stages whose boundary gets an injected "
                        "crash, once each (--target pipeline only)")
    p.add_argument("--reports", type=int, default=6,
                   help="honest reports per device (--target federation only)")
    p.add_argument("--min-support", type=int, default=2,
                   help="k-anonymity gate (--target federation only)")
    add_json_flag(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "federate",
        help="run the fleet-scale federation bench; emits BENCH_federation.json",
    )
    p.add_argument("--apps", type=int, default=48)
    p.add_argument("--devices", type=int, default=10_000, help="fleet size")
    p.add_argument("--reports", type=int, default=3, help="honest reports per device")
    p.add_argument("--single-reports", type=int, default=384,
                   help="reports for the single-device comparison arm")
    p.add_argument("--min-support", type=int, default=3,
                   help="k-anonymity gate for the fleet arm")
    p.add_argument("--rate", type=float, default=0.2, help="injected device-fault rate")
    p.add_argument("--shards", type=int, default=16, help="ingest shards")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quick", action="store_true", help="smoke scale for CI")
    p.add_argument("--out", default="", help="write the JSON report here")
    add_json_flag(p)
    p.set_defaults(func=cmd_federate)

    p = sub.add_parser(
        "trace",
        help="run an instrumented pipeline; export spans, Chrome trace, metrics",
    )
    p.add_argument("--apps", type=int, default=60)
    p.add_argument("--sample", type=int, default=40, help="M packets to cluster")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="distance-engine processes (0 = one per CPU)")
    p.add_argument("--out", default="trace_out", help="artifact directory")
    add_json_flag(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="run an instrumented serving scenario; export the metrics registry",
    )
    p.add_argument("--apps", type=int, default=60)
    p.add_argument("--events", type=int, default=1200, help="gateway arrivals")
    p.add_argument("--sample", type=int, default=40, help="M packets per signature set")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="metrics_out", help="artifact directory")
    add_json_flag(p)
    p.set_defaults(func=cmd_metrics)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
