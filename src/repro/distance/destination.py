"""HTTP packet destination distance (paper Section IV-B).

    d_dst(p_x, p_y) = d_ip + d_port + d_host

Component conventions follow the paper exactly, with one reading made
explicit: the paper defines ``d_ip = lmatch/32`` and calls it a distance,
but a *longer* shared prefix means the destinations are *closer*; likewise
``match(port) = 1`` for equal ports.  Read literally, those are
similarities.  We implement the distance reading — ``d_ip = 1 - lmatch/32``
and ``d_port = 0`` for equal ports — so that all components agree in
orientation (0 = identical, 1 = maximally far) and hierarchical clustering
merges similar packets first.  The original orientation is available via
``similarity=True`` for fidelity experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.http.packet import Destination, HttpPacket
from repro.net.editdist import normalized_levenshtein
from repro.net.ipv4 import ADDRESS_BITS, IPv4Address, common_prefix_length
from repro.net.ports import ports_match

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.registry import IpRegistry


def ip_distance(ip_x: IPv4Address, ip_y: IPv4Address, *, similarity: bool = False) -> float:
    """``d_ip``: 1 minus the normalized shared-prefix length.

    0.0 for identical addresses; 1.0 when even the first bit differs.
    With ``similarity=True`` returns the paper's literal ``lmatch/32``.
    """
    fraction = common_prefix_length(ip_x, ip_y) / ADDRESS_BITS
    return fraction if similarity else 1.0 - fraction


def port_distance(port_x: int, port_y: int, *, similarity: bool = False) -> float:
    """``d_port``: 0.0 for matching ports, 1.0 otherwise (flipped when
    ``similarity=True``)."""
    matched = ports_match(port_x, port_y)
    if similarity:
        return 1.0 if matched else 0.0
    return 0.0 if matched else 1.0


def host_distance(host_x: str, host_y: str) -> float:
    """``d_host``: edit distance between FQDNs over the longer length.

    Already a distance in the paper; used unchanged.
    """
    return normalized_levenshtein(host_x, host_y)


def destination_distance(
    x: Destination | HttpPacket,
    y: Destination | HttpPacket,
    *,
    similarity: bool = False,
    registry: "IpRegistry | None" = None,
) -> float:
    """``d_dst``: sum of the three components, in ``[0, 3]``.

    Accepts either bare destinations or whole packets for convenience.

    :param registry: when given, the IP component is WHOIS-verified via
        :func:`repro.net.registry.registry_corrected_ip_distance` — the
        paper's Section VI suggestion for avoiding erroneously small
        distances between unrelated neighbours in address space.
    """
    dest_x = x.destination if isinstance(x, HttpPacket) else x
    dest_y = y.destination if isinstance(y, HttpPacket) else y
    if registry is not None and not similarity:
        from repro.net.registry import registry_corrected_ip_distance

        ip_component = registry_corrected_ip_distance(registry, dest_x.ip, dest_y.ip)
    else:
        ip_component = ip_distance(dest_x.ip, dest_y.ip, similarity=similarity)
    return (
        ip_component
        + port_distance(dest_x.port, dest_y.port, similarity=similarity)
        + host_distance(dest_x.host, dest_y.host)
    )
