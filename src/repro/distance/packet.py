"""The combined HTTP packet distance ``d_pkt`` (paper Section IV-D).

    d_pkt(p_x, p_y) = d_dst(p_x, p_y) + d_header(p_x, p_y)

:class:`PacketDistance` is the object handed to the clustering layer.  It
also exposes the ablation knobs DESIGN.md calls out: destination-only,
content-only, and per-side weights.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.distance.content import ContentDistance
from repro.distance.destination import destination_distance
from repro.distance.ncd import CacheStats, Compressor
from repro.errors import DistanceError
from repro.http.packet import HttpPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.registry import IpRegistry


class PacketDistance:
    """Configurable ``d_pkt`` evaluator.

    :param compressor: compressor for the content-side NCDs.
    :param destination_weight: multiplier on ``d_dst`` (paper: 1.0;
        0.0 gives the content-only ablation).
    :param content_weight: multiplier on ``d_header`` (paper: 1.0;
        0.0 gives the destination-only ablation).
    :param registry: optional WHOIS registry for the verified-IP variant
        (paper Section VI suggestion).

    The unweighted paper metric has range ``[0, 6]`` (three destination
    components + three content components, each in ``[0, 1]``).
    :attr:`max_distance` reports the configured maximum so cut heights can
    be expressed as fractions.
    """

    def __init__(
        self,
        compressor: Compressor = Compressor.ZLIB,
        *,
        destination_weight: float = 1.0,
        content_weight: float = 1.0,
        registry: "IpRegistry | None" = None,
    ) -> None:
        if destination_weight < 0 or content_weight < 0:
            raise DistanceError("distance weights must be non-negative")
        if destination_weight == 0 and content_weight == 0:
            raise DistanceError("at least one distance side must be enabled")
        self.destination_weight = destination_weight
        self.content_weight = content_weight
        self.registry = registry
        self.content = ContentDistance(compressor)

    @property
    def max_distance(self) -> float:
        """Upper bound of :meth:`distance` under this configuration."""
        return 3.0 * self.destination_weight + self.content.component_count * self.content_weight

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the content-side ``C(x)`` cache."""
        return self.content.calculator.stats

    def precompute(self, packets: Iterable[HttpPacket]) -> int:
        """Batch-compress every content field once, ahead of the pair loop.

        No-op (returns 0) for the destination-only ablation.
        """
        if not self.content_weight:
            return 0
        return self.content.precompute(packets)

    def distance(self, x: HttpPacket, y: HttpPacket) -> float:
        """``d_pkt``: weighted sum of destination and content distances."""
        total = 0.0
        if self.destination_weight:
            total += self.destination_weight * destination_distance(
                x, y, registry=self.registry
            )
        if self.content_weight:
            total += self.content_weight * self.content.distance(x, y)
        return total

    def __call__(self, x: HttpPacket, y: HttpPacket) -> float:
        return self.distance(x, y)

    @classmethod
    def paper(cls, compressor: Compressor = Compressor.ZLIB) -> "PacketDistance":
        """The exact configuration of the paper (both sides, weight 1)."""
        return cls(compressor)

    @classmethod
    def destination_only(cls) -> "PacketDistance":
        """Ablation: cluster by destination alone."""
        return cls(destination_weight=1.0, content_weight=0.0)

    @classmethod
    def content_only(cls, compressor: Compressor = Compressor.ZLIB) -> "PacketDistance":
        """Ablation: cluster by content alone."""
        return cls(compressor, destination_weight=0.0, content_weight=1.0)

    @classmethod
    def whois_verified(cls, registry: "IpRegistry") -> "PacketDistance":
        """The paper's §VI extension: registration-verified IP distance."""
        return cls(registry=registry)
