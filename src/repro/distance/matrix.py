"""Pairwise distance matrices in condensed form.

Group-average clustering of M packets needs all M(M-1)/2 pairwise
distances.  :class:`CondensedMatrix` stores them in the usual condensed
(upper-triangle, row-major) layout on a numpy array, the same convention
scipy uses, so validation code can cross-check against
:func:`scipy.cluster.hierarchy` when scipy is installed.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import DistanceError


class CondensedMatrix:
    """Symmetric zero-diagonal distance matrix over ``n`` items.

    :param n: number of items.
    :param values: condensed vector of length ``n * (n - 1) // 2``.
    """

    def __init__(self, n: int, values: np.ndarray) -> None:
        expected = n * (n - 1) // 2
        if values.shape != (expected,):
            raise DistanceError(
                f"condensed vector has length {values.shape[0]}, expected {expected} for n={n}"
            )
        self.n = n
        self.values = values

    def _index(self, i: int, j: int) -> int:
        if i == j:
            raise DistanceError("diagonal has no condensed index")
        if i > j:
            i, j = j, i
        if not 0 <= i < self.n or not 0 <= j < self.n:
            raise DistanceError(f"index ({i}, {j}) out of range for n={self.n}")
        # Offset of row i, then the column within the row.
        return i * self.n - i * (i + 1) // 2 + (j - i - 1)

    def get(self, i: int, j: int) -> float:
        """Distance between items ``i`` and ``j`` (0.0 on the diagonal)."""
        if i == j:
            return 0.0
        return float(self.values[self._index(i, j)])

    def to_square(self) -> np.ndarray:
        """Expand to a full symmetric ``n x n`` array (vectorized fill)."""
        square = np.zeros((self.n, self.n), dtype=float)
        if self.values.size:
            rows, cols = np.triu_indices(self.n, k=1)
            square[rows, cols] = self.values
            square[cols, rows] = self.values
        return square

    def subset(self, indices: Sequence[int]) -> "CondensedMatrix":
        """Condensed matrix over ``items[indices]`` (vectorized gather).

        The result's pair ``(a, b)`` equals this matrix's pair
        ``(indices[a], indices[b])`` — the same values a fresh build over
        the sub-population would produce.  Used by block-local
        reclustering, which only ever looks inside one block.
        """
        picked = np.asarray(list(indices), dtype=np.intp)
        if picked.size and (picked.min() < 0 or picked.max() >= self.n):
            raise DistanceError(
                f"subset indices out of range for n={self.n}"
            )
        if len(set(picked.tolist())) != picked.size:
            raise DistanceError("subset indices must be distinct")
        m = picked.size
        if m < 2:
            return CondensedMatrix(m, np.empty(0, dtype=float))
        local_rows, local_cols = np.triu_indices(m, k=1)
        gi = picked[local_rows]
        gj = picked[local_cols]
        lo = np.minimum(gi, gj)
        hi = np.maximum(gi, gj)
        condensed = lo * self.n - lo * (lo + 1) // 2 + (hi - lo - 1)
        return CondensedMatrix(m, self.values[condensed].astype(float, copy=True))

    @property
    def max(self) -> float:
        return float(self.values.max()) if self.values.size else 0.0

    @property
    def min(self) -> float:
        return float(self.values.min()) if self.values.size else 0.0


def distance_matrix(
    items: Sequence,
    metric: Callable[[object, object], float],
    *,
    progress: Callable[[int, int], None] | None = None,
) -> CondensedMatrix:
    """Evaluate ``metric`` over all unordered pairs of ``items``.

    :param progress: optional callback ``(done_pairs, total_pairs)`` invoked
        every 1000 pairs, for long-running experiment logs.
    :raises DistanceError: when a pair evaluates to a negative or
        non-finite value — metrics must be well-behaved before clustering.
    """
    n = len(items)
    total = n * (n - 1) // 2
    values = np.empty(total, dtype=float)
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            value = metric(items[i], items[j])
            if not np.isfinite(value) or value < 0:
                raise DistanceError(f"metric returned invalid value {value!r} for pair ({i}, {j})")
            values[k] = value
            k += 1
            if progress is not None and k % 1000 == 0:
                progress(k, total)
    if progress is not None:
        progress(total, total)
    return CondensedMatrix(n, values)
