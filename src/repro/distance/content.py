"""HTTP packet content distance (paper Section IV-C).

    d_header(p_x, p_y) = d_rline + d_cookie + d_body

Each component is the normalized compression distance between the
corresponding field of the two requests: request-line, ``Cookie`` header
value, and message body.  Fields are compared as bytes (latin-1 for the
text fields, raw bytes for the body) so binary bodies are handled without
decoding loss.
"""

from __future__ import annotations

from typing import Iterable

from repro.distance.ncd import Compressor, NcdCalculator
from repro.http.packet import HttpPacket


class ContentDistance:
    """Configurable ``d_header`` evaluator with a shared NCD cache.

    :param compressor: compressor backing the NCD (ablation knob).
    :param use_rline: include the request-line component.
    :param use_cookie: include the cookie component.
    :param use_body: include the body component.

    Disabling components changes the range of the result
    (``[0, #enabled]``); the defaults reproduce the paper.
    """

    def __init__(
        self,
        compressor: Compressor = Compressor.ZLIB,
        *,
        use_rline: bool = True,
        use_cookie: bool = True,
        use_body: bool = True,
    ) -> None:
        self._ncd = NcdCalculator(compressor)
        self.use_rline = use_rline
        self.use_cookie = use_cookie
        self.use_body = use_body

    @property
    def component_count(self) -> int:
        """How many components are enabled (the maximum of the sum)."""
        return sum((self.use_rline, self.use_cookie, self.use_body))

    @property
    def calculator(self) -> NcdCalculator:
        """The shared NCD calculator (cache inspection / precomputation)."""
        return self._ncd

    def fields(self, packet: HttpPacket) -> tuple[bytes, ...]:
        """The enabled content fields of ``packet``, as compared bytes."""
        parts: list[bytes] = []
        if self.use_rline:
            parts.append(packet.request_line.encode("latin-1"))
        if self.use_cookie:
            parts.append(packet.cookie.encode("latin-1"))
        if self.use_body:
            parts.append(packet.body)
        return tuple(parts)

    def precompute(self, packets: Iterable[HttpPacket]) -> int:
        """Batch-fill ``C(x)`` for every enabled field of every packet.

        Run once before a pairwise matrix build so the M(M-1)/2 pair loop
        only pays for the concatenated ``C(xy)`` terms.  Returns the number
        of newly compressed strings.
        """
        blobs: list[bytes] = []
        for packet in packets:
            blobs.extend(self.fields(packet))
        return self._ncd.precompute(blobs)

    def rline_distance(self, x: HttpPacket, y: HttpPacket) -> float:
        """``d_rline``: NCD of the two request-lines."""
        return self._ncd.distance(
            x.request_line.encode("latin-1"), y.request_line.encode("latin-1")
        )

    def cookie_distance(self, x: HttpPacket, y: HttpPacket) -> float:
        """``d_cookie``: NCD of the two Cookie header values.

        Two packets without cookies are at cookie-distance 0 (both fields
        empty, hence identical), per the NCD edge-case convention.
        """
        return self._ncd.distance(
            x.cookie.encode("latin-1"), y.cookie.encode("latin-1")
        )

    def body_distance(self, x: HttpPacket, y: HttpPacket) -> float:
        """``d_body``: NCD of the two message bodies."""
        return self._ncd.distance(x.body, y.body)

    def distance(self, x: HttpPacket, y: HttpPacket) -> float:
        """``d_header``: sum of the enabled components."""
        total = 0.0
        if self.use_rline:
            total += self.rline_distance(x, y)
        if self.use_cookie:
            total += self.cookie_distance(x, y)
        if self.use_body:
            total += self.body_distance(x, y)
        return total

    def __call__(self, x: HttpPacket, y: HttpPacket) -> float:
        return self.distance(x, y)


def header_distance(
    x: HttpPacket, y: HttpPacket, compressor: Compressor = Compressor.ZLIB
) -> float:
    """One-shot ``d_header`` without cache reuse (convenience wrapper)."""
    return ContentDistance(compressor).distance(x, y)
