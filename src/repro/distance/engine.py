"""Parallel, cached distance-matrix engine — the §IV hot path.

Building the clustering input costs M(M-1)/2 evaluations of ``d_pkt``,
each of which runs three zlib compressions (the NCD content side) plus a
pure-Python FQDN edit distance.  :class:`DistanceEngine` accelerates that
build three ways, without changing a single output bit relative to the
serial :func:`repro.distance.matrix.distance_matrix` loop:

1. **Decomposition over unique field values.**  Real traffic repeats
   itself: a 200-packet sample typically carries ~10 distinct hosts, a
   handful of bodies, and one cookie jar.  For :class:`PacketDistance`
   metrics the engine deduplicates each packet field up front and caches
   every *component* distance per unique value pair, so the dominant
   host-Levenshtein cost drops from O(M²) to O(U²) for U unique hosts.
   Component caches return the exact floats a recomputation would, and
   the per-pair summation order mirrors ``PacketDistance.distance``
   literally, so results are bit-identical.
2. **Batch precomputation of single-string compressed lengths.**  All
   ``C(x)`` terms are filled once up front via
   :meth:`NcdCalculator.precompute` (in the parent, before any fan-out),
   leaving only the concatenated ``C(xy)`` terms for the pair loop.
3. **Multiprocessing fan-out.**  The condensed pair index space is cut
   into contiguous chunks and mapped over a worker pool.  Workers receive
   the pre-serialized evaluator exactly once (pool initializer), not per
   pair; chunk results are reassembled in index order, so the output is
   deterministic and independent of worker count or scheduling.

The engine also supports **incremental extension**: given the condensed
matrix over M items, :meth:`DistanceEngine.extend` appends k new items by
computing only the k·M + k(k-1)/2 new pairs and splicing the old values
into the larger condensed layout — bit-identical to a full rebuild.
:class:`MatrixCache` packages that pattern for consumers that grow an
item population over time (``repro.core.incremental``).

Metrics that are not :class:`PacketDistance` instances fall back to a
generic per-pair evaluator (still chunked and parallelizable when the
metric pickles; serial — with ``EngineStats.fallback`` set to
``"unpicklable_metric"`` — when it does not, e.g. for lambdas).

**Worker-pool fault tolerance.**  Passing a
:class:`~repro.reliability.workerfaults.WorkerFaultPlan` switches the
engine into supervised dispatch: every chunk attempt may crash (result
lost), hang (charged the plan's logical-tick deadline, then declared
dead), or return poisoned values.  Crashed and hung chunks are
re-dispatched under the engine's :class:`~repro.reliability.retry.RetryPolicy`
with seeded backoff; poisoned chunks — detected by per-chunk integrity
checksums taken before the injection point — and chunks that exhaust
their retry budget are quarantined and recomputed serially in the
parent, which the plan never touches.  The invariant, asserted by tests
and the pipeline chaos sweep: a recovered run is **bit-identical** to a
fault-free run at any fault rate, worker count, or chunking.
"""

from __future__ import annotations

import contextlib
import hashlib
import math
import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.distance.blocking import BlockAssignment, BlockingConfig, assign_blocks
from repro.distance.destination import destination_distance
from repro.distance.matrix import CondensedMatrix
from repro.distance.ncd import CacheStats, NcdCalculator
from repro.distance.packet import PacketDistance
from repro.errors import DistanceError
from repro.obs import NULL_OBS, Observability
from repro.reliability.quarantine import Quarantine
from repro.reliability.retry import RetryPolicy
from repro.reliability.workerfaults import ChunkFaultKind, WorkerFaultPlan
from repro.simulation.rng import derive_rng

#: Condensed-index pairs per pool task.  Small enough to load-balance a
#: handful of workers, large enough that per-task IPC is negligible.
DEFAULT_CHUNK_PAIRS = 4096


@dataclass(slots=True)
class EngineStats:
    """Machine-readable account of one engine run (feeds ``BENCH_perf.json``)."""

    n_items: int = 0
    n_pairs: int = 0
    workers_requested: int = 1
    workers_used: int = 1
    chunks: int = 1
    mode: str = "generic"  # "packet" (decomposed fast path) or "generic"
    fallback: str | None = None
    fallback_detail: str | None = None
    pair_hits: int = 0
    pair_misses: int = 0
    chunks_retried: int = 0
    chunks_quarantined: int = 0
    faults_injected: int = 0
    recovered: bool = True
    n_blocks: int = 0
    pairs_pruned: int = 0
    singles: CacheStats = field(default_factory=CacheStats)

    @property
    def pair_lookups(self) -> int:
        return self.pair_hits + self.pair_misses

    @property
    def pair_hit_rate(self) -> float:
        """Fraction of component evaluations served from the pair cache."""
        return self.pair_hits / self.pair_lookups if self.pair_lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "n_items": self.n_items,
            "n_pairs": self.n_pairs,
            "workers_requested": self.workers_requested,
            "workers_used": self.workers_used,
            "chunks": self.chunks,
            "mode": self.mode,
            "fallback": self.fallback,
            "fallback_detail": self.fallback_detail,
            "pair_hits": self.pair_hits,
            "pair_misses": self.pair_misses,
            "chunks_retried": self.chunks_retried,
            "chunks_quarantined": self.chunks_quarantined,
            "faults_injected": self.faults_injected,
            "recovered": self.recovered,
            "n_blocks": self.n_blocks,
            "pairs_pruned": self.pairs_pruned,
            "pair_hit_rate": round(self.pair_hit_rate, 4),
            "singles_hits": self.singles.hits,
            "singles_misses": self.singles.misses,
            "singles_precomputed": self.singles.precomputed,
            "singles_hit_rate": round(self.singles.hit_rate, 4),
        }


@dataclass(slots=True)
class _ChunkStats:
    """Cache-counter delta produced by one chunk evaluation."""

    pair_hits: int = 0
    pair_misses: int = 0
    singles_hits: int = 0
    singles_misses: int = 0


class _PacketEvaluator:
    """Decomposed ``d_pkt`` over unique field values, with component caches.

    Picklable: workers receive one instance (with the precomputed
    single-string length table inside its calculator) and fill their own
    component caches as their chunks demand.
    """

    def __init__(self, metric: PacketDistance, items: Sequence) -> None:
        self.destination_weight = metric.destination_weight
        self.content_weight = metric.content_weight
        self.registry = metric.registry
        content = metric.content
        self.use_rline = content.use_rline
        self.use_cookie = content.use_cookie
        self.use_body = content.use_body
        self.ncd = NcdCalculator(content.calculator.compressor, clamp=content.calculator.clamp)

        # Deduplicated per-packet field id tables, grown by add_items.
        self.destinations: list = []
        self.blobs: list[bytes] = []
        self._dest_ids: dict = {}
        self._blob_ids: dict[bytes, int] = {}
        self.dest_of: list[int] = []
        self.rline_of: list[int] = []
        self.cookie_of: list[int] = []
        self.body_of: list[int] = []

        # Component caches, filled on demand during chunk evaluation.
        self._dest_cache: dict[tuple[int, int], float] = {}
        self._ncd_cache: dict[tuple[int, int], float] = {}

        self.add_items(items)

    def add_items(self, items: Sequence) -> None:
        """Append ``items`` to the evaluated population.

        Incremental: only blobs not seen before are added to the id tables
        and get their ``C(x)`` precomputed, so a streaming consumer pays
        per *new unique value*, not per packet.  Existing item indices,
        cached components, and computed distances are untouched.
        """
        blob_ids = self._blob_ids
        dest_ids = self._dest_ids
        first_new_blob = len(self.blobs)

        def blob_id(blob: bytes) -> int:
            index = blob_ids.get(blob)
            if index is None:
                index = blob_ids[blob] = len(self.blobs)
                self.blobs.append(blob)
            return index

        for packet in items:
            destination = packet.destination
            index = dest_ids.get(destination)
            if index is None:
                index = dest_ids[destination] = len(self.destinations)
                self.destinations.append(destination)
            self.dest_of.append(index)
            self.rline_of.append(blob_id(packet.request_line.encode("latin-1")))
            self.cookie_of.append(blob_id(packet.cookie.encode("latin-1")))
            self.body_of.append(blob_id(packet.body))

        # C(x) for the new blobs only — workers inherit the warm table.
        if self.content_weight and len(self.blobs) > first_new_blob:
            self.ncd.precompute(self.blobs[first_new_blob:])

    def pairs(self, rows: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, _ChunkStats]:
        """Evaluate ``d_pkt`` for each ``(rows[t], cols[t])`` pair."""
        out = np.empty(len(rows), dtype=float)
        stats = _ChunkStats()
        singles = self.ncd.stats
        singles_hits0, singles_misses0 = singles.hits, singles.misses
        dest_weight = self.destination_weight
        content_weight = self.content_weight
        dest_cache = self._dest_cache
        ncd_cache = self._ncd_cache
        destinations = self.destinations
        blobs = self.blobs
        ncd_distance = self.ncd.distance

        def ncd_component(id_x: int, id_y: int) -> float:
            # Ordered key: C(xy) depends on concatenation order, and the
            # serial loop always concatenates row-item first.
            key = (id_x, id_y)
            value = ncd_cache.get(key)
            if value is None:
                value = ncd_distance(blobs[id_x], blobs[id_y])
                ncd_cache[key] = value
                stats.pair_misses += 1
            else:
                stats.pair_hits += 1
            return value

        for t in range(len(rows)):
            i = int(rows[t])
            j = int(cols[t])
            total = 0.0
            if dest_weight:
                a, b = self.dest_of[i], self.dest_of[j]
                key = (a, b) if a <= b else (b, a)  # every component is symmetric
                dest = dest_cache.get(key)
                if dest is None:
                    dest = destination_distance(
                        destinations[a], destinations[b], registry=self.registry
                    )
                    dest_cache[key] = dest
                    stats.pair_misses += 1
                else:
                    stats.pair_hits += 1
                total += dest_weight * dest
            if content_weight:
                header = 0.0
                if self.use_rline:
                    header += ncd_component(self.rline_of[i], self.rline_of[j])
                if self.use_cookie:
                    header += ncd_component(self.cookie_of[i], self.cookie_of[j])
                if self.use_body:
                    header += ncd_component(self.body_of[i], self.body_of[j])
                total += content_weight * header
            if not np.isfinite(total) or total < 0:
                raise DistanceError(
                    f"metric returned invalid value {total!r} for pair ({i}, {j})"
                )
            out[t] = total
        stats.singles_hits = singles.hits - singles_hits0
        stats.singles_misses = singles.misses - singles_misses0
        return out, stats


class _GenericEvaluator:
    """Plain per-pair evaluation for arbitrary metrics (no decomposition)."""

    def __init__(self, metric: Callable, items: Sequence) -> None:
        self.metric = metric
        self.items = list(items)

    def add_items(self, items: Sequence) -> None:
        self.items.extend(items)

    def pairs(self, rows: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, _ChunkStats]:
        out = np.empty(len(rows), dtype=float)
        metric = self.metric
        items = self.items
        for t in range(len(rows)):
            i = int(rows[t])
            j = int(cols[t])
            value = metric(items[i], items[j])
            if not np.isfinite(value) or value < 0:
                raise DistanceError(
                    f"metric returned invalid value {value!r} for pair ({i}, {j})"
                )
            out[t] = value
        return out, _ChunkStats()


@dataclass(slots=True)
class _WorkerState:
    """Everything a pool worker needs, shipped once via the initializer."""

    evaluator: object
    n_full: int | None  # condensed triu over n items …
    rows: np.ndarray | None  # … or an explicit pair list (extension mode)
    cols: np.ndarray | None
    plan: WorkerFaultPlan | None = None


_WORKER: _WorkerState | None = None


def _worker_init(payload: bytes) -> None:
    global _WORKER
    state: _WorkerState = pickle.loads(payload)
    if state.n_full is not None:
        state.rows, state.cols = np.triu_indices(state.n_full, k=1)
    _WORKER = state


def _worker_chunk(task: tuple[int, int]) -> tuple[np.ndarray, _ChunkStats]:
    start, stop = task
    assert _WORKER is not None
    return _WORKER.evaluator.pairs(_WORKER.rows[start:stop], _WORKER.cols[start:stop])


@dataclass(slots=True)
class _ChunkOutcome:
    """One supervised chunk-evaluation attempt, as reported to the dispatcher.

    ``checksum`` is taken over the honest result bytes *before* the poison
    injection point, so the dispatcher's integrity check catches silent
    corruption between compute and delivery.
    """

    chunk_index: int
    attempt: int
    kind: str  # ChunkFaultKind value
    values: np.ndarray | None
    stats: _ChunkStats | None
    checksum: str | None


def _evaluate_chunk(
    evaluator,
    plan: WorkerFaultPlan | None,
    rows: np.ndarray,
    cols: np.ndarray,
    chunk_index: int,
    start: int,
    stop: int,
    attempt: int,
) -> _ChunkOutcome:
    """Evaluate one chunk under (optional) fault injection.

    Runs identically in-process and inside pool workers; the fault outcome
    is a pure function of ``(plan.seed, chunk_index, attempt)``, so results
    are independent of where the call executes.
    """
    kind = plan.outcome(chunk_index, attempt) if plan is not None else ChunkFaultKind.NONE
    if kind in (ChunkFaultKind.CRASH, ChunkFaultKind.HANG):
        # The work is lost either way; computing it first would only burn
        # cycles without changing any observable output.
        return _ChunkOutcome(chunk_index, attempt, kind.value, None, None, None)
    values, stats = evaluator.pairs(rows[start:stop], cols[start:stop])
    checksum = _chunk_checksum(values)
    if kind is ChunkFaultKind.POISON:
        values = plan.corrupt(values, chunk_index, attempt)
    return _ChunkOutcome(chunk_index, attempt, kind.value, values, stats, checksum)


def _worker_supervised_chunk(task: tuple[int, int, int, int]) -> _ChunkOutcome:
    chunk_index, start, stop, attempt = task
    assert _WORKER is not None
    return _evaluate_chunk(
        _WORKER.evaluator, _WORKER.plan, _WORKER.rows, _WORKER.cols,
        chunk_index, start, stop, attempt,
    )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class DistanceEngine:
    """Chunked, cached, optionally parallel pairwise-distance computation.

    :param metric: the pair metric (``PacketDistance`` unlocks the
        decomposed fast path; any callable works).
    :param workers: process count. ``1`` (default) evaluates in-process —
        the right setting for tests and small M; ``0`` means "one per
        CPU".  Results are bit-identical for every worker count.
    :param chunk_pairs: condensed-index pairs per pool task.
    :param obs: optional observability bundle.  The engine emits one
        ``engine_chunk`` span per pool task (ticks advanced by pairs
        evaluated) and surfaces :class:`CacheStats` deltas as monotonic
        counters.  The bundle never crosses the process boundary — worker
        state is pickled before it is consulted — and computed values are
        bit-identical with or without it.
    :param fault_plan: optional seeded
        :class:`~repro.reliability.workerfaults.WorkerFaultPlan`.  When
        given, dispatch is supervised: crashed/hung chunks are re-dispatched
        under ``retry`` (seeded backoff, per-retry ``engine_chunk_retry``
        spans), poisoned or retry-exhausted chunks are quarantined and
        recomputed serially in the parent, and :attr:`stats` reports
        ``chunks_retried`` / ``chunks_quarantined`` / ``recovered``.
        Recovered results are bit-identical to a fault-free run.
    :param retry: re-dispatch budget and backoff for failed chunks
        (default: 3 attempts, deterministic exponential backoff).
    """

    def __init__(
        self,
        metric: Callable | None = None,
        *,
        workers: int = 1,
        chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
        obs: Observability | None = None,
        fault_plan: WorkerFaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if workers < 0:
            raise DistanceError(f"workers must be >= 0, got {workers}")
        if chunk_pairs < 1:
            raise DistanceError(f"chunk_pairs must be positive, got {chunk_pairs}")
        self.metric = metric if metric is not None else PacketDistance.paper()
        self.workers = workers or (os.cpu_count() or 1)
        self.chunk_pairs = chunk_pairs
        self.obs = obs or NULL_OBS
        self.fault_plan = fault_plan
        self.retry = retry or RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0, jitter=0.25)
        self.quarantine = Quarantine(capacity=64) if fault_plan is not None else None
        self.stats = EngineStats()

    # -- public API ---------------------------------------------------------------

    def matrix(
        self,
        items: Sequence,
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> CondensedMatrix:
        """All-pairs condensed matrix over ``items`` (order-preserving)."""
        n = len(items)
        total = n * (n - 1) // 2
        evaluator = self._build_evaluator(items)
        values = self._compute(
            evaluator, total, n_full=n, rows=None, cols=None, progress=progress
        )
        self.stats.n_items = n
        self.stats.n_pairs = total
        return CondensedMatrix(n, values)

    def extend(
        self,
        matrix: CondensedMatrix,
        items: Sequence,
        new_items: Sequence,
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> CondensedMatrix:
        """Append ``new_items`` to an existing matrix over ``items``.

        Computes only the ``k*M + k(k-1)/2`` pairs that involve a new item
        and splices ``matrix.values`` into the larger condensed layout;
        the result is bit-identical to a full rebuild over
        ``list(items) + list(new_items)``.

        :raises DistanceError: when ``matrix`` does not match ``items``.
        """
        n = len(items)
        if matrix.n != n:
            raise DistanceError(
                f"matrix covers {matrix.n} items but {n} were supplied"
            )
        k = len(new_items)
        if k == 0:
            return CondensedMatrix(n, matrix.values.copy())
        combined = list(items) + list(new_items)
        n_new = n + k

        # Old pairs keep their values; only their condensed indices shift.
        new_values = np.empty(n_new * (n_new - 1) // 2, dtype=float)
        if n > 1:
            old_rows, old_cols = np.triu_indices(n, k=1)
            new_values[_condensed_indices(old_rows, old_cols, n_new)] = matrix.values

        # The new pairs: every old x new, then new x new — computed with
        # the same evaluator a full rebuild would use.
        rows_on = np.repeat(np.arange(n), k)
        cols_on = np.tile(np.arange(n, n_new), n)
        rows_nn, cols_nn = np.triu_indices(k, k=1)
        rows = np.concatenate([rows_on, rows_nn + n])
        cols = np.concatenate([cols_on, cols_nn + n])

        evaluator = self._build_evaluator(combined)
        computed = self._compute(
            evaluator, len(rows), n_full=None, rows=rows, cols=cols, progress=progress
        )
        new_values[_condensed_indices(rows, cols, n_new)] = computed
        self.stats.n_items = n_new
        self.stats.n_pairs = len(rows)
        return CondensedMatrix(n_new, new_values)

    def blocked_matrix(
        self,
        items: Sequence,
        *,
        blocking: BlockingConfig,
        progress: Callable[[int, int], None] | None = None,
    ) -> tuple[CondensedMatrix, BlockAssignment]:
        """Condensed matrix computed only inside candidate blocks.

        Within-block pairs go through the same evaluator :meth:`matrix`
        uses (same row-major orientation, same caches) and are therefore
        bit-identical to a full build.  Cross-block pairs are never
        evaluated; their entries are set to ``blocking.fill_value(metric)``,
        above both the threshold and the metric ceiling, so any flat cut
        at or below ``blocking.threshold`` never sees them.  In
        ``BlockingMode.EXACT`` that cut is provably identical to cutting
        the full matrix (see :mod:`repro.distance.blocking`).
        """
        n = len(items)
        assignment = assign_blocks(items, self.metric, blocking)
        evaluator = self._build_evaluator(items)
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        for block in assignment.blocks:
            if len(block) < 2:
                continue
            members = np.asarray(block, dtype=np.intp)
            local_rows, local_cols = np.triu_indices(len(members), k=1)
            row_parts.append(members[local_rows])
            col_parts.append(members[local_cols])
        if row_parts:
            rows = np.concatenate(row_parts)
            cols = np.concatenate(col_parts)
        else:
            rows = np.empty(0, dtype=np.intp)
            cols = np.empty(0, dtype=np.intp)

        with self.obs.span(
            "engine_blocked_matrix", track="engine",
            n_items=n, n_blocks=assignment.stats.n_blocks,
            pairs_within=assignment.stats.pairs_within,
        ):
            computed = self._compute(
                evaluator, len(rows), n_full=None, rows=rows, cols=cols,
                progress=progress,
            )
        values = np.full(
            n * (n - 1) // 2, blocking.fill_value(self.metric), dtype=float
        )
        if len(rows):
            values[_condensed_indices(rows, cols, n)] = computed
        self.stats.n_items = n
        self.stats.n_pairs = len(rows)
        self.stats.n_blocks = assignment.stats.n_blocks
        self.stats.pairs_pruned = assignment.stats.pairs_pruned
        self.obs.inc("engine_pairs_pruned", assignment.stats.pairs_pruned)
        self.obs.set_gauge("engine_blocks", assignment.stats.n_blocks)
        return CondensedMatrix(n, values), assignment

    # -- internals ----------------------------------------------------------------

    def _build_evaluator(self, items: Sequence):
        if isinstance(self.metric, PacketDistance):
            self.stats = EngineStats(mode="packet")
            evaluator = _PacketEvaluator(self.metric, items)
            self.stats.singles.precomputed = evaluator.ncd.stats.precomputed
            self.obs.inc("engine_singles_precomputed", evaluator.ncd.stats.precomputed)
            return evaluator
        self.stats = EngineStats(mode="generic")
        return _GenericEvaluator(self.metric, items)

    def _compute(
        self,
        evaluator,
        total: int,
        *,
        n_full: int | None,
        rows: np.ndarray | None,
        cols: np.ndarray | None,
        progress: Callable[[int, int], None] | None,
    ) -> np.ndarray:
        self.stats.workers_requested = self.workers
        if total == 0:
            return np.empty(0, dtype=float)
        workers = min(self.workers, total)
        chunk = max(1, min(self.chunk_pairs, math.ceil(total / max(1, workers))))
        tasks = [(start, min(start + chunk, total)) for start in range(0, total, chunk)]
        self.stats.chunks = len(tasks)

        payload: bytes | None = None
        if workers > 1:
            try:
                payload = pickle.dumps(
                    _WorkerState(
                        evaluator=evaluator, n_full=n_full, rows=rows, cols=cols,
                        plan=self.fault_plan,
                    )
                )
            except Exception as exc:  # unpicklable metric/items: stay serial
                self.stats.fallback = "unpicklable_metric"
                self.stats.fallback_detail = f"{exc.__class__.__name__}: {exc}"
                self.obs.inc("engine_fallback_unpicklable")
                workers = 1

        if self.fault_plan is not None:
            return self._compute_supervised(
                evaluator, tasks, total,
                n_full=n_full, rows=rows, cols=cols,
                workers=workers, payload=payload, progress=progress,
            )

        values = np.empty(total, dtype=float)
        if workers <= 1 or payload is None:
            self.stats.workers_used = 1
            if rows is None:
                rows, cols = np.triu_indices(n_full, k=1)
            done = 0
            for chunk_index, (start, stop) in enumerate(tasks):
                with self.obs.span(
                    "engine_chunk", track="engine", chunk=chunk_index, pairs=stop - start
                ):
                    chunk_values, delta = evaluator.pairs(rows[start:stop], cols[start:stop])
                    self.obs.advance(stop - start)
                values[start:stop] = chunk_values
                self._absorb(delta)
                done = stop
                if progress is not None:
                    progress(done, total)
            return values

        workers = min(workers, len(tasks))
        self.stats.workers_used = workers
        with _pool_context().Pool(
            processes=workers, initializer=_worker_init, initargs=(payload,)
        ) as pool:
            done = 0
            # Results arrive in task order (imap preserves it), so the
            # per-chunk spans are deterministic for a fixed chunking even
            # though workers race; the span brackets result collection.
            for chunk_index, ((start, stop), (chunk_values, delta)) in enumerate(
                zip(tasks, pool.imap(_worker_chunk, tasks))
            ):
                with self.obs.span(
                    "engine_chunk", track="engine", chunk=chunk_index, pairs=stop - start
                ):
                    self.obs.advance(stop - start)
                values[start:stop] = chunk_values
                self._absorb(delta)
                done = stop
                if progress is not None:
                    progress(done, total)
        return values

    def _compute_supervised(
        self,
        evaluator,
        tasks: list[tuple[int, int]],
        total: int,
        *,
        n_full: int | None,
        rows: np.ndarray | None,
        cols: np.ndarray | None,
        workers: int,
        payload: bytes | None,
        progress: Callable[[int, int], None] | None,
    ) -> np.ndarray:
        """Fault-tolerant chunk dispatch under :attr:`fault_plan`.

        Failed attempts are re-dispatched in rounds, in chunk-index order,
        so recovery is deterministic for a seed regardless of worker count
        or scheduling; quarantined chunks are recomputed serially in the
        parent, which the plan never touches.  The assembled matrix is
        bit-identical to a fault-free run.
        """
        plan = self.fault_plan
        assert plan is not None
        self.stats.recovered = False
        if rows is None:
            rows, cols = np.triu_indices(n_full, k=1)
        pool_workers = min(workers, len(tasks)) if payload is not None else 1
        self.stats.workers_used = max(1, pool_workers)
        values = np.empty(total, dtype=float)
        done_pairs = 0
        pending = [(index, start, stop, 0) for index, (start, stop) in enumerate(tasks)]

        pool_cm = (
            _pool_context().Pool(
                processes=pool_workers, initializer=_worker_init, initargs=(payload,)
            )
            if pool_workers > 1
            else contextlib.nullcontext(None)
        )
        with pool_cm as pool:
            while pending:
                retry_round: list[tuple[int, int, int, int]] = []
                if pool is not None:
                    outcomes = pool.imap(_worker_supervised_chunk, pending)
                else:
                    outcomes = (
                        _evaluate_chunk(evaluator, plan, rows, cols, *task) for task in pending
                    )
                for task, outcome in zip(pending, outcomes):
                    chunk_index, start, stop, attempt = task
                    kind = ChunkFaultKind(outcome.kind)
                    plan.record(kind)
                    if kind is not ChunkFaultKind.NONE:
                        self.stats.faults_injected += 1
                        self.obs.inc("engine_faults_injected")

                    if outcome.values is None:
                        # CRASH (result lost) or HANG (deadline elapsed
                        # before the attempt was declared dead).
                        if kind is ChunkFaultKind.HANG:
                            self.obs.advance(plan.deadline_ticks)
                        if attempt + 1 < self.retry.max_attempts:
                            delay = self.retry.backoff(
                                attempt,
                                derive_rng(plan.seed, "engine-retry", str(chunk_index), str(attempt)),
                            )
                            with self.obs.span(
                                "engine_chunk_retry", track="engine",
                                chunk=chunk_index, attempt=attempt + 1, reason=kind.value,
                            ):
                                self.obs.advance(int(round(delay)))
                            self.stats.chunks_retried += 1
                            self.obs.inc("engine_chunks_retried")
                            retry_round.append((chunk_index, start, stop, attempt + 1))
                        else:
                            done_pairs += self._quarantine_and_recompute(
                                evaluator, values, rows, cols, chunk_index, start, stop,
                                attempt, reason=f"retry_budget_exhausted_{kind.value}",
                            )
                            if progress is not None:
                                progress(done_pairs, total)
                        continue

                    if _chunk_checksum(outcome.values) != outcome.checksum:
                        # Integrity violation — a poisoned (or genuinely
                        # corrupted) result.  Never retried through the
                        # plan: quarantine, then recompute where the plan
                        # cannot reach.
                        done_pairs += self._quarantine_and_recompute(
                            evaluator, values, rows, cols, chunk_index, start, stop,
                            attempt, reason="poisoned_chunk",
                        )
                        if progress is not None:
                            progress(done_pairs, total)
                        continue

                    with self.obs.span(
                        "engine_chunk", track="engine",
                        chunk=chunk_index, pairs=stop - start, attempt=attempt,
                    ):
                        self.obs.advance(stop - start)
                    values[start:stop] = outcome.values
                    self._absorb(outcome.stats)
                    done_pairs += stop - start
                    if progress is not None:
                        progress(done_pairs, total)
                pending = retry_round
        self.stats.recovered = True
        return values

    def _quarantine_and_recompute(
        self,
        evaluator,
        values: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        chunk_index: int,
        start: int,
        stop: int,
        attempt: int,
        *,
        reason: str,
    ) -> int:
        """Quarantine one failed chunk and recompute it serially in the parent."""
        self.stats.chunks_quarantined += 1
        self.obs.inc("engine_chunks_quarantined")
        if self.quarantine is not None:
            self.quarantine.add(
                DistanceError(f"chunk {chunk_index} failed at attempt {attempt}: {reason}"),
                payload=(chunk_index, start, stop),
                reason=reason,
            )
        with self.obs.span(
            "engine_chunk_recompute", track="engine",
            chunk=chunk_index, pairs=stop - start, reason=reason,
        ):
            chunk_values, delta = evaluator.pairs(rows[start:stop], cols[start:stop])
            self.obs.advance(stop - start)
        values[start:stop] = chunk_values
        self._absorb(delta)
        return stop - start

    def _absorb(self, delta: _ChunkStats) -> None:
        self.stats.pair_hits += delta.pair_hits
        self.stats.pair_misses += delta.pair_misses
        self.stats.singles.hits += delta.singles_hits
        self.stats.singles.misses += delta.singles_misses
        self.obs.inc("engine_pair_hits", delta.pair_hits)
        self.obs.inc("engine_pair_misses", delta.pair_misses)
        self.obs.inc("engine_singles_hits", delta.singles_hits)
        self.obs.inc("engine_singles_misses", delta.singles_misses)


def _chunk_checksum(values: np.ndarray) -> str:
    """Integrity checksum over one chunk's result bytes."""
    return hashlib.sha256(values.tobytes()).hexdigest()


def _condensed_indices(rows: np.ndarray, cols: np.ndarray, n: int) -> np.ndarray:
    """Condensed (upper-triangle, row-major) index of each ``(i, j)`` pair."""
    return rows * n - rows * (rows + 1) // 2 + (cols - rows - 1)


def engine_matrix(
    items: Sequence,
    metric: Callable,
    *,
    workers: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> CondensedMatrix:
    """One-shot convenience wrapper: build a matrix through the engine."""
    return DistanceEngine(metric, workers=workers).matrix(items, progress=progress)


class MatrixCache:
    """A condensed matrix that grows with its item list.

    Consumers that accumulate packets over time (incremental consolidation,
    streaming re-clustering) call :meth:`add` with each new tranche; only
    the new-pair block is computed, via :meth:`DistanceEngine.extend`.
    """

    def __init__(self, engine: DistanceEngine | None = None) -> None:
        self.engine = engine or DistanceEngine()
        self.items: list = []
        self.matrix: CondensedMatrix | None = None

    def __len__(self) -> int:
        return len(self.items)

    def add(self, new_items: Sequence) -> CondensedMatrix:
        """Extend the cached matrix with ``new_items`` and return it."""
        new_items = list(new_items)
        if self.matrix is None:
            self.items = new_items
            self.matrix = self.engine.matrix(self.items)
        elif new_items:
            self.matrix = self.engine.extend(self.matrix, self.items, new_items)
            self.items.extend(new_items)
        return self.matrix

    def rebuild(self, items: Sequence) -> CondensedMatrix:
        """Replace the cached population outright (full recompute)."""
        self.items = list(items)
        self.matrix = self.engine.matrix(self.items)
        return self.matrix

    def prune(self, keep_indices: Sequence[int]) -> CondensedMatrix | None:
        """Restrict the cached population to ``items[keep_indices]``.

        The cached matrix is *gathered*, not recomputed — every surviving
        pair keeps its exact value — so a later :meth:`add` extends from
        the pruned state instead of rebuilding from scratch.
        """
        keep = list(keep_indices)
        self.items = [self.items[index] for index in keep]
        if self.matrix is not None:
            self.matrix = self.matrix.subset(keep)
        return self.matrix


class PairStream:
    """On-demand pair distances over a growing item population.

    Where :class:`MatrixCache` maintains the *full* condensed matrix,
    ``PairStream`` is the sparse companion for blocked/streaming
    clustering: it keeps one persistent evaluator (dedup id tables +
    warm ``C(x)`` cache, grown incrementally via ``add_items``) and an
    item-level pair cache, and computes only the pairs callers actually
    request — attach probes, then dirty-block matrices, with every pair
    evaluated at most once across both phases.

    Distances are bit-identical to the full-matrix build: pairs are
    always evaluated with the smaller index as the row item, matching
    the condensed layout's row-major concatenation order for NCD.

    :param max_cached_pairs: optional LRU bound on the pair cache.  Over
        an unbounded stream (e.g. arena rounds feeding misses forever)
        the cache would otherwise grow with every pair ever probed; with
        a bound, the least-recently-used pairs are evicted and simply
        recomputed (deterministically) if requested again, so capping
        the cache never changes any distance — only ``pairs_evaluated``.
    """

    def __init__(
        self,
        engine: DistanceEngine | None = None,
        *,
        max_cached_pairs: int | None = None,
    ) -> None:
        if max_cached_pairs is not None and max_cached_pairs < 1:
            raise ValueError("max_cached_pairs must be >= 1 when set")
        self.engine = engine or DistanceEngine()
        self.max_cached_pairs = max_cached_pairs
        self.items: list = []
        self._evaluator = None
        self._cache: dict[tuple[int, int], float] = {}
        self.pairs_evaluated = 0
        self.cache_hits = 0
        self.evictions = 0

    @property
    def cached_pairs(self) -> int:
        """Current number of pair distances held in the cache."""
        return len(self._cache)

    def _evict_over_cap(self) -> None:
        if self.max_cached_pairs is None:
            return
        while len(self._cache) > self.max_cached_pairs:
            # dict preserves insertion order; hits re-insert (LRU order).
            self._cache.pop(next(iter(self._cache)))
            self.evictions += 1

    def __len__(self) -> int:
        return len(self.items)

    def extend(self, new_items: Sequence) -> None:
        """Append ``new_items`` to the population (indices keep counting up)."""
        new_items = list(new_items)
        if not new_items:
            return
        if self._evaluator is None:
            self.items = new_items
            self._evaluator = self.engine._build_evaluator(self.items)
        else:
            self._evaluator.add_items(new_items)
            self.items.extend(new_items)

    def distance(self, i: int, j: int) -> float:
        """Distance between items ``i`` and ``j`` (cached)."""
        if i == j:
            return 0.0
        return float(self.distances([(i, j)])[0])

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Distances for ``pairs``; only cache misses are evaluated.

        Large miss batches (>= the engine's chunk size) go through the
        engine's chunked — possibly multi-process — dispatch; small ones
        are evaluated serially in-process.
        """
        out = np.empty(len(pairs), dtype=float)
        missing: list[tuple[int, int]] = []
        missing_pos: list[int] = []
        for t, (i, j) in enumerate(pairs):
            if i == j:  # diagonal, by the matrix convention
                out[t] = 0.0
                continue
            key = (i, j) if i < j else (j, i)
            value = self._cache.get(key)
            if value is None:
                missing.append(key)
                missing_pos.append(t)
            else:
                if self.max_cached_pairs is not None:
                    # Refresh recency so hot pairs survive eviction.
                    self._cache[key] = self._cache.pop(key)
                out[t] = value
                self.cache_hits += 1
        if missing:
            rows = np.fromiter((k[0] for k in missing), dtype=np.intp, count=len(missing))
            cols = np.fromiter((k[1] for k in missing), dtype=np.intp, count=len(missing))
            if len(missing) >= self.engine.chunk_pairs and self.engine.workers > 1:
                values = self.engine._compute(
                    self._evaluator, len(rows),
                    n_full=None, rows=rows, cols=cols, progress=None,
                )
            else:
                values, delta = self._evaluator.pairs(rows, cols)
                self.engine._absorb(delta)
            for key, pos, value in zip(missing, missing_pos, values):
                self._cache[key] = float(value)
                out[pos] = value
            self.pairs_evaluated += len(missing)
            self._evict_over_cap()
        return out

    def matrix(self, indices: Sequence[int]) -> CondensedMatrix:
        """Condensed matrix over ``items[indices]`` (cache-backed).

        Used for dirty-block compaction: pairs already probed during
        attach are served from the cache; only the rest are evaluated.
        """
        picked = list(indices)
        m = len(picked)
        if m < 2:
            return CondensedMatrix(m, np.empty(0, dtype=float))
        local_rows, local_cols = np.triu_indices(m, k=1)
        pairs = [
            (picked[a], picked[b])
            for a, b in zip(local_rows.tolist(), local_cols.tolist())
        ]
        return CondensedMatrix(m, self.distances(pairs))
