"""Candidate-pair blocking: compute NCD only where clusters can form.

The distance-matrix engine made the M(M-1)/2 pair loop fast; blocking
makes most of it *unnecessary*.  Real leak traffic is bimodal: packets of
the same advertisement module sit at ``d_pkt`` ~0.1 of each other, while
cross-module pairs sit above ~2.0.  Clusters only form below an absolute
linkage threshold ``t``, so any pair provably farther than ``t`` never
influences the flat clustering at ``t`` — its NCD need not be computed.

Two candidate-pair prefilters are provided, selected by
:class:`BlockingMode`:

``EXACT`` — *provably lossless* destination blocking.  The packet metric
    decomposes as ``d_pkt = w_dst * d_dst + w_content * d_header`` with
    ``d_header >= 0``, so ``w_dst * d_dst`` is a cheap lower bound on
    ``d_pkt`` (no compression involved).  Packets whose destinations are
    within ``t`` of each other (under the bound) are connected; blocks are
    the connected components.  Every cross-block pair satisfies
    ``d_pkt > t``, and for the reducible linkages (group average, single,
    complete) no merge at height <= ``t`` can ever join two blocks — the
    flat clusters at any cut <= ``t`` are **identical** to clustering the
    full matrix.  Destination values repeat heavily (a 2000-packet corpus
    carries ~25 distinct destinations), so the bound is evaluated on
    unique destinations only: O(U^2) cheap comparisons, not O(M^2).

``LSH`` — approximate blocking for metrics or corpora where the
    destination bound is too loose: exact destination-key blocking on
    ``host:port/path`` unioned with token-shingle minhash/LSH over the
    header fields (request line + cookie).  Pairs that share a block key
    or collide in any minhash band become candidates.  Not lossless; the
    streaming bench audits its recall against a full recluster.

Blocking never changes a computed distance — within-block pairs go
through the same evaluator the full matrix build uses, bit-identically.
Cross-block entries are set to a fill value above the threshold, which
the <= ``t`` cut never looks at.
"""

from __future__ import annotations

import enum
import hashlib
import re
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Sequence

from repro.distance.destination import destination_distance
from repro.errors import DistanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.distance.packet import PacketDistance
    from repro.http.packet import Destination, HttpPacket


class BlockingMode(enum.Enum):
    """Candidate-pair prefilter strategy."""

    EXACT = "exact"  # destination lower bound; provably lossless
    LSH = "lsh"  # destination key + minhash bands; audited, not lossless


@dataclass(frozen=True, slots=True)
class BlockingConfig:
    """Blocking policy for blocked matrices and streaming clustering.

    :param mode: prefilter strategy (:class:`BlockingMode`).
    :param threshold: absolute linkage height ``t`` clusters are cut at.
        Exact-mode losslessness holds for any cut at or below it.
    :param num_hashes: minhash signature length (LSH mode).
    :param bands: LSH bands; ``num_hashes`` must divide evenly into them.
        More bands = higher recall, more candidates.
    :param shingle: tokens per shingle for the header minhash.
    :param seed: seed for the minhash salt derivation.
    """

    mode: BlockingMode = BlockingMode.EXACT
    threshold: float = 1.2
    num_hashes: int = 32
    bands: int = 8
    shingle: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise DistanceError(f"blocking threshold must be positive, got {self.threshold}")
        if self.num_hashes < 1 or self.bands < 1:
            raise DistanceError("num_hashes and bands must be positive")
        if self.num_hashes % self.bands:
            raise DistanceError(
                f"bands ({self.bands}) must divide num_hashes ({self.num_hashes})"
            )
        if self.shingle < 1:
            raise DistanceError(f"shingle size must be positive, got {self.shingle}")

    def fill_value(self, metric: object) -> float:
        """Cross-block matrix entry: above the threshold *and* the metric's
        own ceiling, so cuts at or below the threshold never see it."""
        ceiling = getattr(metric, "max_distance", 0.0)
        return max(float(ceiling), self.threshold + 1.0)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode.value,
            "threshold": self.threshold,
            "num_hashes": self.num_hashes,
            "bands": self.bands,
            "shingle": self.shingle,
            "seed": self.seed,
        }


@dataclass(slots=True)
class BlockingStats:
    """Account of one block assignment (feeds ``BENCH_streaming.json``)."""

    n_items: int = 0
    n_blocks: int = 0
    largest_block: int = 0
    pairs_total: int = 0
    pairs_within: int = 0

    @property
    def pairs_pruned(self) -> int:
        return self.pairs_total - self.pairs_within

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the condensed pair space blocking removed."""
        return self.pairs_pruned / self.pairs_total if self.pairs_total else 0.0

    def to_dict(self) -> dict:
        return {
            "n_items": self.n_items,
            "n_blocks": self.n_blocks,
            "largest_block": self.largest_block,
            "pairs_total": self.pairs_total,
            "pairs_within": self.pairs_within,
            "pairs_pruned": self.pairs_pruned,
            "pruned_fraction": round(self.pruned_fraction, 4),
        }


@dataclass(slots=True)
class BlockAssignment:
    """Blocks over one item population, in deterministic order.

    Blocks are sorted by smallest member index; members ascend within a
    block, so downstream pair enumeration matches the full matrix's
    row-major orientation (row item = smaller index) bit-for-bit.
    """

    blocks: list[list[int]]
    stats: BlockingStats


class UnionFind:
    """Disjoint sets over item indices with member tracking.

    Roots are canonical (the smallest member index of the component), so
    component identity is deterministic regardless of union order.
    """

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._members: dict[int, list[int]] = {}

    def add(self, index: int) -> None:
        if index not in self._parent:
            self._parent[index] = index
            self._members[index] = [index]

    def find(self, index: int) -> int:
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:  # path compression
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, a: int, b: int) -> tuple[int, bool]:
        """Join the components of ``a`` and ``b``.

        :returns: ``(root, merged)`` — ``merged`` is False when they were
            already one component.  The surviving root is the smaller one,
            keeping representatives stable across insertion orders.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra, False
        keep, absorb = (ra, rb) if ra < rb else (rb, ra)
        self._parent[absorb] = keep
        self._members[keep].extend(self._members.pop(absorb))
        return keep, True

    def members(self, index: int) -> list[int]:
        """All indices in ``index``'s component (unsorted)."""
        return self._members[self.find(index)]

    def components(self) -> list[list[int]]:
        """Every component, members ascending, ordered by smallest member."""
        return sorted(
            (sorted(members) for members in self._members.values()),
            key=lambda block: block[0],
        )


def destination_block_key(packet: "HttpPacket") -> str:
    """Exact destination block key: ``host:port/path`` (LSH mode)."""
    return f"{packet.host}:{packet.port}{packet.request.path}"


_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def header_tokens(packet: "HttpPacket") -> list[str]:
    """Alphanumeric tokens of the header fields (request line + cookie)."""
    return _TOKEN_RE.findall(packet.request_line) + _TOKEN_RE.findall(packet.cookie)


def header_shingles(packet: "HttpPacket", k: int) -> set[bytes]:
    """Token k-shingles of the header fields, as hashable byte strings.

    Shorter inputs yield their single full-window shingle so no packet is
    left without a signature.
    """
    tokens = header_tokens(packet)
    if not tokens:
        return set()
    if len(tokens) <= k:
        return {"\x1f".join(tokens).encode("utf-8")}
    return {
        "\x1f".join(tokens[i : i + k]).encode("utf-8")
        for i in range(len(tokens) - k + 1)
    }


class MinHasher:
    """Seeded minhash over shingle sets (deterministic across processes).

    One stable 64-bit content hash per shingle (blake2b — Python's builtin
    ``hash`` is salted per process) xor-mixed with ``num_hashes`` seeded
    salts; the minimum per salt approximates a random permutation.
    """

    def __init__(self, num_hashes: int, seed: int) -> None:
        rng = Random(seed)
        self._salts = [rng.getrandbits(64) for __ in range(num_hashes)]

    @staticmethod
    def _base_hash(shingle: bytes) -> int:
        return int.from_bytes(
            hashlib.blake2b(shingle, digest_size=8).digest(), "big"
        )

    def signature(self, shingles: set[bytes]) -> tuple[int, ...]:
        """Minhash signature; empty shingle sets collide with each other."""
        if not shingles:
            return tuple(self._salts)
        bases = [self._base_hash(s) for s in shingles]
        return tuple(min(base ^ salt for base in bases) for salt in self._salts)


class ExactBlocker:
    """Destination lower-bound blocking — the provably lossless mode.

    Incremental: :meth:`add` unions the new item with every destination
    component within reach of the bound.  The bound is evaluated once per
    *unique* destination pair, so a stream of M packets over U distinct
    destinations costs O(U^2) cheap comparisons total.

    With ``destination_weight == 0`` (content-only ablation) the bound is
    vacuous and everything lands in one block — still lossless, no pruning.
    """

    def __init__(self, metric: "PacketDistance", config: BlockingConfig) -> None:
        self.weight = metric.destination_weight
        self.registry = metric.registry
        self.threshold = config.threshold
        self.uf = UnionFind()
        self._dest_ids: dict["Destination", int] = {}
        self._destinations: list["Destination"] = []
        self._anchor: list[int] = []  # first item index per unique destination

    def add(self, index: int, packet: "HttpPacket") -> list[tuple[int, int]]:
        """Register ``packet`` as item ``index``.

        :returns: root pairs that were distinct components before this
            item bridged them (block merges the caller must dirty).
        """
        self.uf.add(index)
        if self.weight == 0.0:
            if index > 0:
                __, merged = self.uf.union(index, 0)
                return []  # one global block; never two real blocks merging
            return []
        destination = packet.destination
        known = self._dest_ids.get(destination)
        if known is not None:
            self.uf.union(index, self._anchor[known])
            return []
        self._dest_ids[destination] = len(self._destinations)
        self._destinations.append(destination)
        self._anchor.append(index)
        merges: list[tuple[int, int]] = []
        for other_id in range(len(self._destinations) - 1):
            bound = self.weight * destination_distance(
                destination, self._destinations[other_id], registry=self.registry
            )
            if bound <= self.threshold:
                root_new = self.uf.find(index)
                root_old = self.uf.find(self._anchor[other_id])
                if root_new != root_old:
                    self.uf.union(index, self._anchor[other_id])
                    merges.append((root_new, root_old))
        return merges

    def find(self, index: int) -> int:
        return self.uf.find(index)

    def members(self, index: int) -> list[int]:
        return self.uf.members(index)

    def components(self) -> list[list[int]]:
        return self.uf.components()


class LshBlocker:
    """Destination-key + minhash/LSH candidate blocking (approximate).

    Items sharing an exact ``host:port/path`` key, or colliding in any
    minhash band over their header shingles, join one block.  Recall on
    true merge pairs is audited, not guaranteed.
    """

    def __init__(self, config: BlockingConfig) -> None:
        self.config = config
        self.hasher = MinHasher(config.num_hashes, config.seed)
        self.rows = config.num_hashes // config.bands
        self.uf = UnionFind()
        self._dest_anchor: dict[str, int] = {}
        self._band_anchor: dict[tuple[int, tuple[int, ...]], int] = {}

    def add(self, index: int, packet: "HttpPacket") -> list[tuple[int, int]]:
        """Register ``packet`` as item ``index``; returns bridged root pairs."""
        self.uf.add(index)
        merges: list[tuple[int, int]] = []

        def link(anchor: int) -> None:
            root_new, root_old = self.uf.find(index), self.uf.find(anchor)
            if root_new != root_old:
                self.uf.union(index, anchor)
                merges.append((root_new, root_old))

        key = destination_block_key(packet)
        anchor = self._dest_anchor.setdefault(key, index)
        if anchor != index:
            link(anchor)
        signature = self.hasher.signature(
            header_shingles(packet, self.config.shingle)
        )
        for band in range(self.config.bands):
            window = signature[band * self.rows : (band + 1) * self.rows]
            band_key = (band, window)
            anchor = self._band_anchor.setdefault(band_key, index)
            if anchor != index:
                link(anchor)
        return merges

    def find(self, index: int) -> int:
        return self.uf.find(index)

    def members(self, index: int) -> list[int]:
        return self.uf.members(index)

    def components(self) -> list[list[int]]:
        return self.uf.components()


def make_blocker(metric: object, config: BlockingConfig):
    """Build the blocker for ``config``, validating metric compatibility."""
    if config.mode is BlockingMode.LSH:
        return LshBlocker(config)
    # Exact mode needs the decomposed packet metric for its lower bound.
    from repro.distance.packet import PacketDistance

    if not isinstance(metric, PacketDistance):
        raise DistanceError(
            "exact blocking requires a PacketDistance metric "
            f"(got {type(metric).__name__}); use BlockingMode.LSH for "
            "generic metrics"
        )
    return ExactBlocker(metric, config)


def assign_blocks(
    items: Sequence, metric: object, config: BlockingConfig
) -> BlockAssignment:
    """One-shot block assignment over a full item population."""
    blocker = make_blocker(metric, config)
    for index, packet in enumerate(items):
        blocker.add(index, packet)
    blocks = blocker.components()
    n = len(items)
    stats = BlockingStats(
        n_items=n,
        n_blocks=len(blocks),
        largest_block=max((len(b) for b in blocks), default=0),
        pairs_total=n * (n - 1) // 2,
        pairs_within=sum(len(b) * (len(b) - 1) // 2 for b in blocks),
    )
    return BlockAssignment(blocks=blocks, stats=stats)
