"""Normalized compression distance (NCD).

The paper computes content similarity with the NCD of Cilibrasi's thesis:

    ncd(x, y) = (C(xy) - min(C(x), C(y))) / max(C(x), C(y))

where ``C`` is the compressed length of its argument.  NCD approximates the
(uncomputable) normalized information distance; two strings that share
structure compress better together than apart.

Real-valued results land in roughly ``[0, 1.1]`` for zlib-family
compressors (imperfect compression can push slightly above 1); callers that
need a bounded metric can clamp via :func:`ncd` 's ``clamp`` flag.
"""

from __future__ import annotations

import bz2
import enum
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import DistanceError


class Compressor(enum.Enum):
    """Available compressors for ``C``.

    ``ZLIB`` is the default: it is fast, and its 32 KiB window comfortably
    covers two concatenated HTTP requests.  ``BZ2`` and ``LZMA`` are kept
    for the compressor ablation bench.
    """

    ZLIB = "zlib"
    BZ2 = "bz2"
    LZMA = "lzma"


def _zlib_len(data: bytes) -> int:
    return len(zlib.compress(data, 9))


def _bz2_len(data: bytes) -> int:
    return len(bz2.compress(data, 9))


def _lzma_len(data: bytes) -> int:
    return len(lzma.compress(data, preset=6))


_COMPRESSED_LENGTH: dict[Compressor, Callable[[bytes], int]] = {
    Compressor.ZLIB: _zlib_len,
    Compressor.BZ2: _bz2_len,
    Compressor.LZMA: _lzma_len,
}


def compressed_length(data: bytes, compressor: Compressor = Compressor.ZLIB) -> int:
    """``C(data)``: length in bytes of the compressed representation."""
    return _COMPRESSED_LENGTH[compressor](data)


def ncd(
    x: bytes,
    y: bytes,
    compressor: Compressor = Compressor.ZLIB,
    *,
    clamp: bool = True,
) -> float:
    """Normalized compression distance between two byte strings.

    Edge cases: two empty strings are identical (distance 0); one empty
    string against a non-empty one is maximally distant (1.0) — the paper
    leaves this undefined, and this choice keeps the metric total when a
    request has no cookie or no body.

    :param clamp: clip the result into ``[0, 1]`` (compression overhead can
        produce values slightly outside).
    """
    if not x and not y:
        return 0.0
    if not x or not y:
        return 1.0
    length = _COMPRESSED_LENGTH[compressor]
    cx = length(x)
    cy = length(y)
    cxy = length(x + y)
    denominator = max(cx, cy)
    if denominator == 0:
        raise DistanceError("compressor returned zero length for non-empty input")
    value = (cxy - min(cx, cy)) / denominator
    if clamp:
        value = min(1.0, max(0.0, value))
    return value


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for a memoized ``C(x)`` cache.

    ``precomputed`` counts entries filled by :meth:`NcdCalculator.precompute`
    (charged up front, so they are neither hits nor misses of the lazy path).
    """

    hits: int = 0
    misses: int = 0
    precomputed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lazy lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def add(self, other: "CacheStats") -> None:
        """Accumulate another counter set (used to merge worker deltas)."""
        self.hits += other.hits
        self.misses += other.misses
        self.precomputed += other.precomputed


class NcdCalculator:
    """NCD with memoized single-string compressed lengths.

    Pairwise distance matrices over M packets evaluate ``C(x)`` for the
    same ``x`` up to M-1 times; caching those (but not the pair terms,
    which are all distinct) removes about half the compression work.
    :meth:`precompute` batch-fills the cache for a whole corpus up front so
    the pair loop — possibly running in worker processes — never compresses
    a single string lazily.

    :param compressor: which compressor backs ``C``.
    :param clamp: clip results into ``[0, 1]``.
    """

    def __init__(self, compressor: Compressor = Compressor.ZLIB, *, clamp: bool = True) -> None:
        self.compressor = compressor
        self.clamp = clamp
        self.stats = CacheStats()
        self._length_cache: dict[bytes, int] = {}
        self._length = _COMPRESSED_LENGTH[compressor]

    def compressed_length(self, data: bytes) -> int:
        """Memoized ``C(data)``."""
        cached = self._length_cache.get(data)
        if cached is None:
            self.stats.misses += 1
            cached = self._length(data)
            self._length_cache[data] = cached
        else:
            self.stats.hits += 1
        return cached

    def precompute(self, blobs: Iterable[bytes]) -> int:
        """Batch-fill ``C(x)`` for every distinct blob not already cached.

        Empty blobs are skipped — :meth:`distance` short-circuits them
        before any length lookup.  Returns how many lengths were newly
        computed, and charges them to ``stats.precomputed``.
        """
        cache = self._length_cache
        length = self._length
        new = 0
        for blob in blobs:
            if blob and blob not in cache:
                cache[blob] = length(blob)
                new += 1
        self.stats.precomputed += new
        return new

    def distance(self, x: bytes, y: bytes) -> float:
        """NCD using the memoized single-string lengths."""
        if not x and not y:
            return 0.0
        if not x or not y:
            return 1.0
        cx = self.compressed_length(x)
        cy = self.compressed_length(y)
        cxy = self._length(x + y)
        value = (cxy - min(cx, cy)) / max(cx, cy)
        if self.clamp:
            value = min(1.0, max(0.0, value))
        return value

    def cache_size(self) -> int:
        return len(self._length_cache)

    def clear_cache(self) -> None:
        self._length_cache.clear()
        self.stats = CacheStats()
