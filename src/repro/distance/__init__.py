"""HTTP packet distances (paper Sections IV-B, IV-C).

The full packet distance is

    d_pkt(p_x, p_y) = d_dst(p_x, p_y) + d_header(p_x, p_y)

with ``d_dst = d_ip + d_port + d_host`` over the destination triple and
``d_header = d_rline + d_cookie + d_body``, each component a normalized
compression distance.  :class:`repro.distance.packet.PacketDistance` is the
configurable entry point; :func:`repro.distance.matrix.distance_matrix`
computes condensed pairwise matrices for clustering.
"""

from repro.distance.blocking import (
    BlockAssignment,
    BlockingConfig,
    BlockingMode,
    BlockingStats,
    assign_blocks,
)
from repro.distance.content import ContentDistance, header_distance
from repro.distance.destination import (
    destination_distance,
    host_distance,
    ip_distance,
    port_distance,
)
from repro.distance.engine import (
    DistanceEngine,
    EngineStats,
    MatrixCache,
    PairStream,
    engine_matrix,
)
from repro.distance.matrix import CondensedMatrix, distance_matrix
from repro.distance.ncd import CacheStats, Compressor, NcdCalculator, ncd
from repro.distance.packet import PacketDistance

__all__ = [
    "ncd",
    "NcdCalculator",
    "CacheStats",
    "Compressor",
    "ip_distance",
    "port_distance",
    "host_distance",
    "destination_distance",
    "header_distance",
    "ContentDistance",
    "PacketDistance",
    "distance_matrix",
    "CondensedMatrix",
    "DistanceEngine",
    "EngineStats",
    "MatrixCache",
    "PairStream",
    "engine_matrix",
    "BlockingMode",
    "BlockingConfig",
    "BlockingStats",
    "BlockAssignment",
    "assign_blocks",
]
