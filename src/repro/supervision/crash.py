"""Seeded inter-stage crash injection for the checkpointed pipeline.

A :class:`CrashPlan` kills a staged run *between* stages — after a stage's
output has been checkpointed, before the next stage starts — which is
exactly the window where checkpointing must prove itself: everything the
journal holds survives, everything downstream is recomputed on resume.

Crash points are either explicit (``crash_after=("linkage",)``) or drawn
at a seeded rate per executed stage boundary.  Every point fires **once**
per plan instance: a supervisor restarting with the same plan sails past
the boundary that killed the previous attempt, so a finite crash list
always terminates.  Replayed (checkpoint-served) stages never consult the
plan — a resumed run only faces crashes at boundaries it actually
executes, mirroring a real fault that lives in the work, not the journal.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.errors import SupervisionError
from repro.simulation.rng import derive_rng


class InjectedCrash(SupervisionError):
    """The run was killed between stages by a :class:`CrashPlan`.

    :param stage: the stage whose boundary the crash fired at (its output
        is already checkpointed when this is raised).
    """

    def __init__(self, stage: str) -> None:
        self.stage = stage
        super().__init__(f"injected crash after stage {stage!r}")


class CrashPlan:
    """Deterministic between-stage crash injection.

    :param seed: determinism root for the rate-based draws.
    :param crash_after: stage names whose boundary crashes the run, once
        each, the first time that stage *executes*.
    :param rate: additional probability of crashing after any executed
        stage, drawn per ``(stage, occurrence)`` so the schedule replays
        identically across restarts of the same plan instance.
    :raises SupervisionError: for a rate outside ``[0, 1]``.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        crash_after: Sequence[str] = (),
        rate: float = 0.0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise SupervisionError(f"crash rate must be in [0, 1], got {rate}")
        self.seed = seed
        self.crash_after = list(crash_after)
        self.rate = rate
        self.crashes: list[str] = []
        self._fired: set[str] = set()
        self._draws: Counter[str] = Counter()

    @classmethod
    def after(cls, *stages: str, seed: int = 0) -> "CrashPlan":
        """A plan with explicit crash points only."""
        return cls(seed=seed, crash_after=stages)

    @property
    def pending(self) -> list[str]:
        """Explicit crash points that have not fired yet."""
        return [stage for stage in self.crash_after if stage not in self._fired]

    def should_crash(self, stage: str) -> bool:
        """Whether the boundary after ``stage`` kills this run.

        Called once per *executed* stage; marks explicit points as fired
        and advances the per-stage draw counter, so the decision sequence
        is a pure function of the plan's history.
        """
        if stage in self.crash_after and stage not in self._fired:
            self._fired.add(stage)
            self.crashes.append(stage)
            return True
        if self.rate:
            occurrence = self._draws[stage]
            self._draws[stage] += 1
            rng = derive_rng(self.seed, "stage-crash", stage, str(occurrence))
            if rng.random() < self.rate:
                self.crashes.append(stage)
                return True
        return False
