"""Content-addressed stage checkpointing for the detection pipeline.

A :class:`CheckpointStore` journals each pipeline stage's output under a
key derived from ``sha256(seed + config + stage)``
(:func:`checkpoint_key`), so a run interrupted between stages can
:meth:`~repro.supervision.runner.StagedPipeline.resume` by replaying the
completed prefix and recomputing only downstream stages.  Two properties
make this safe:

- **Keys are semantic.**  The key hashes the experiment seed, a stable
  configuration fingerprint, and the stage name — never wall-clock time or
  process identity — so a checkpoint written by one run is exactly the
  checkpoint a same-seed restart looks for, and two different
  configurations can never collide silently.
- **Payloads are verified.**  Every blob is stored with the SHA-256 of its
  bytes; :meth:`CheckpointStore.load` re-hashes on read and treats a
  mismatch as *missing* (counted in :attr:`CheckpointStore.corrupt_detected`),
  so a torn write or bit-flipped file degrades to recomputation, never to
  silently wrong downstream stages.

The store is in-memory by default; passing ``root`` persists blobs as
``<key>.ckpt`` files plus an append-only ``journal.jsonl``, which a fresh
process re-reads on construction — the cross-process resume path.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import SupervisionError


def checkpoint_key(seed: int, config: Any, stage: str) -> str:
    """The content address of one stage's checkpoint.

    :param seed: the experiment seed.
    :param config: a JSON-serializable configuration fingerprint
        (non-serializable leaves are stringified).
    :param stage: the pipeline stage name.
    """
    material = json.dumps(
        {"seed": seed, "config": config, "stage": stage}, sort_keys=True, default=str
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """One completed stage, as recorded in the journal.

    :param stage: pipeline stage name.
    :param key: the stage's :func:`checkpoint_key`.
    :param checksum: SHA-256 of the pickled payload bytes.
    :param n_bytes: payload size, for health reporting.
    """

    stage: str
    key: str
    checksum: str
    n_bytes: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "key": self.key,
            "checksum": self.checksum,
            "n_bytes": self.n_bytes,
        }


class CheckpointStore:
    """Verified, journaled storage for stage outputs.

    :param root: optional directory for persistence.  When given, blobs
        land in ``<root>/<key>.ckpt`` and the journal in
        ``<root>/journal.jsonl``; an existing journal is re-read so a new
        process resumes where the old one died.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._blobs: dict[str, bytes] = {}
        self._index: dict[str, JournalEntry] = {}
        self.journal: list[JournalEntry] = []
        self.corrupt_detected = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._replay_journal()

    def _replay_journal(self) -> None:
        journal_path = self.root / "journal.jsonl"
        if not journal_path.exists():
            return
        for line in journal_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                entry = JournalEntry(
                    stage=record["stage"],
                    key=record["key"],
                    checksum=record["checksum"],
                    n_bytes=record["n_bytes"],
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise SupervisionError(f"corrupt checkpoint journal line: {line!r}") from exc
            self.journal.append(entry)
            self._index[entry.key] = entry

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    @property
    def stages(self) -> list[str]:
        """Journaled stage names, in completion order (duplicates kept)."""
        return [entry.stage for entry in self.journal]

    def save(self, key: str, stage: str, value: Any) -> JournalEntry:
        """Checkpoint one stage output and journal it."""
        payload = pickle.dumps(value)
        entry = JournalEntry(
            stage=stage,
            key=key,
            checksum=hashlib.sha256(payload).hexdigest(),
            n_bytes=len(payload),
        )
        self._blobs[key] = payload
        self._index[key] = entry
        self.journal.append(entry)
        if self.root is not None:
            (self.root / f"{key}.ckpt").write_bytes(payload)
            with (self.root / "journal.jsonl").open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        return entry

    def load(self, key: str) -> Any | None:
        """The checkpointed value, or ``None`` when absent or corrupt.

        A payload whose bytes no longer hash to the journaled checksum is
        dropped from the index and reported as missing — the caller then
        recomputes the stage, which is always safe.
        """
        entry = self._index.get(key)
        if entry is None:
            return None
        payload = self._blobs.get(key)
        if payload is None and self.root is not None:
            blob_path = self.root / f"{key}.ckpt"
            if blob_path.exists():
                payload = blob_path.read_bytes()
        if payload is None:
            return None
        if hashlib.sha256(payload).hexdigest() != entry.checksum:
            self.corrupt_detected += 1
            del self._index[key]
            self._blobs.pop(key, None)
            return None
        return pickle.loads(payload)

    def clear(self) -> None:
        """Forget every checkpoint (in-memory state only; files are kept)."""
        self._blobs.clear()
        self._index.clear()
        self.journal.clear()
