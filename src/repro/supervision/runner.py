"""The checkpointed, crash-injectable staged pipeline runner.

:class:`StagedPipeline` executes the same seven stages as
:class:`~repro.core.pipeline.DetectionPipeline` — collect, payload_check,
sample, distance_matrix, linkage, cut, signature_gen — but journals every
stage's output to a :class:`~repro.supervision.checkpoint.CheckpointStore`
keyed by ``sha256(seed + config + stage)``.  A run killed between stages
(by a real fault or an injected :class:`~repro.supervision.crash.CrashPlan`)
is resumed with :meth:`StagedPipeline.resume`: completed stages replay
from the journal (no span emitted, ``pipeline_stage_replayed`` counted),
only downstream stages recompute.

Determinism contract, asserted by tests and the pipeline chaos sweep: the
final signatures, metrics, and condensed matrix of any resumed run are
**bit-identical** to an uninterrupted run, and to a plain
``DetectionPipeline.run`` with the same trace, config, and seed.

The distance stage runs through :class:`~repro.distance.engine.DistanceEngine`
and therefore composes with worker-pool fault tolerance: pass a
:class:`~repro.reliability.workerfaults.WorkerFaultPlan` to exercise
chunk-level crash/hang/poison recovery inside a checkpointed run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering.dendrogram import Dendrogram
from repro.clustering.linkage import agglomerate
from repro.core.pipeline import PipelineConfig
from repro.dataset.split import sample_packets
from repro.dataset.trace import Trace
from repro.distance.engine import DistanceEngine, EngineStats
from repro.distance.matrix import CondensedMatrix
from repro.distance.packet import PacketDistance
from repro.errors import SignatureError
from repro.eval.metrics import DetectionMetrics, compute_metrics
from repro.http.packet import HttpPacket
from repro.obs import NULL_OBS, Observability
from repro.reliability.retry import RetryPolicy
from repro.reliability.workerfaults import WorkerFaultPlan
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.generator import SignatureGenerator
from repro.signatures.matcher import SignatureMatcher
from repro.supervision.checkpoint import CheckpointStore, checkpoint_key
from repro.supervision.crash import CrashPlan, InjectedCrash

#: Stage order; each entry is one checkpoint boundary.
PIPELINE_STAGES = (
    "collect",
    "payload_check",
    "sample",
    "distance_matrix",
    "linkage",
    "cut",
    "signature_gen",
)


def config_fingerprint(config: PipelineConfig, n_sample: int) -> dict:
    """A stable, JSON-ready identity of one run's policy.

    Built from semantic fields only — object reprs that embed memory
    addresses would break cross-process resume, and ``workers`` is
    excluded because worker count never changes outputs (the engine's
    bit-identity contract).
    """
    distance: PacketDistance = config.distance
    return {
        "distance": {
            "destination_weight": distance.destination_weight,
            "content_weight": distance.content_weight,
            "compressor": distance.content.calculator.compressor.name,
            "registry": distance.registry is not None,
        },
        "linkage": config.linkage.name,
        "generator": repr(config.generator),
        "n_sample": n_sample,
    }


@dataclass(slots=True)
class StagedResult:
    """One supervised run's outputs plus its execution ledger."""

    n_sample: int
    signatures: list[ConjunctionSignature]
    metrics: DetectionMetrics
    matrix: CondensedMatrix
    stages_executed: list[str]
    stages_replayed: list[str]
    engine_stats: EngineStats | None


class StagedPipeline:
    """Checkpointed stage-by-stage execution of the detection pipeline.

    :param trace: the full captured dataset.
    :param payload_check: ground-truth labeler for the capture device.
    :param config: policy knobs (defaults reproduce the paper).
    :param store: checkpoint store; a fresh in-memory store by default.
        Pass a directory-backed store for cross-process resume.
    :param crash_plan: optional seeded between-stage crash injector.
    :param fault_plan: optional chunk-level worker fault injector for the
        distance stage.
    :param retry: chunk re-dispatch policy when ``fault_plan`` is set.
    :param chunk_pairs: pairs per distance-engine chunk (engine default
        when omitted); chaos sweeps shrink it so a run spans many chunks
        and fault injection actually bites.
    :param obs: optional observability bundle.  Executed stages emit the
        same span names as the unsupervised pipeline; replayed stages emit
        none, which is what lets tests assert "resume recomputed only
        downstream stages" from span counts alone.
    """

    def __init__(
        self,
        trace: Trace,
        payload_check: PayloadCheck,
        config: PipelineConfig | None = None,
        *,
        store: CheckpointStore | None = None,
        crash_plan: CrashPlan | None = None,
        fault_plan: WorkerFaultPlan | None = None,
        retry: RetryPolicy | None = None,
        chunk_pairs: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.trace = trace
        self.payload_check = payload_check
        self.config = config or PipelineConfig()
        # `store or ...` would discard a passed-in *empty* store (len() == 0
        # is falsy), so test explicitly for None.
        self.store = store if store is not None else CheckpointStore()
        self.crash_plan = crash_plan
        self.fault_plan = fault_plan
        self.retry = retry
        self.chunk_pairs = chunk_pairs
        self.obs = obs or NULL_OBS
        self.last_engine_stats: EngineStats | None = None

    # -- public API ---------------------------------------------------------------

    def run(self, n_sample: int, seed: int = 0) -> StagedResult:
        """Execute all stages, checkpointing each output.

        Stages already journaled (e.g. by a previous partial run against
        the same store) replay instead of recomputing — :meth:`run` and
        :meth:`resume` share that semantics; ``resume`` exists to make
        restart intent explicit at call sites.

        :raises InjectedCrash: when ``crash_plan`` kills the run between
            stages; everything completed so far is in :attr:`store`.
        """
        return self._execute(n_sample, seed)

    def resume(self, n_sample: int, seed: int = 0) -> StagedResult:
        """Restart after a crash: replay the journaled prefix, recompute the rest."""
        return self._execute(n_sample, seed)

    # -- internals ----------------------------------------------------------------

    def _execute(self, n_sample: int, seed: int) -> StagedResult:
        if n_sample <= 0:
            raise SignatureError(f"sample size must be positive, got {n_sample}")
        fingerprint = config_fingerprint(self.config, n_sample)
        executed: list[str] = []
        replayed: list[str] = []

        def stage(name: str, compute, **span_attrs):
            key = checkpoint_key(seed, fingerprint, name)
            cached = self.store.load(key)
            if cached is not None:
                replayed.append(name)
                self.obs.inc("pipeline_stage_replayed")
                return cached
            with self.obs.span(name, track="pipeline", **span_attrs):
                value = compute()
            self.store.save(key, name, value)
            executed.append(name)
            self.obs.inc("pipeline_stage_executed")
            if self.crash_plan is not None and self.crash_plan.should_crash(name):
                self.obs.inc("pipeline_injected_crashes")
                raise InjectedCrash(name)
            return value

        packets: list[HttpPacket] = stage("collect", self._collect)
        suspicious, normal = stage("payload_check", lambda: self._payload_check(packets))
        if not suspicious:
            raise SignatureError("no suspicious packets in trace; nothing to cluster")
        sample_size = min(n_sample, len(suspicious))
        sample: list[HttpPacket] = stage(
            "sample",
            lambda: self._sample(suspicious, sample_size, seed),
            n_sample=sample_size,
            seed=seed,
        )
        matrix: CondensedMatrix = stage(
            "distance_matrix",
            lambda: self._distance_matrix(sample),
            n_items=len(sample),
            n_pairs=len(sample) * (len(sample) - 1) // 2,
        )
        dendrogram: Dendrogram = stage(
            "linkage", lambda: self._linkage(matrix), n_items=matrix.n
        )
        generator = SignatureGenerator(self.config.generator)
        clusters = stage("cut", lambda: self._cut(generator, dendrogram, sample))
        signatures: list[ConjunctionSignature] = stage(
            "signature_gen", lambda: self._signature_gen(generator, clusters)
        )

        with self.obs.span("eval", track="pipeline") as eval_span:
            matcher = SignatureMatcher(signatures)
            metrics = compute_metrics(
                matcher=matcher,
                suspicious=suspicious,
                normal=normal,
                n_sample=len(sample),
                training_sample=sample,
            )
            self.obs.advance(len(suspicious) + len(normal))
            if eval_span is not None:
                eval_span.attrs["tp_percent"] = metrics.tp_percent
                eval_span.attrs["fp_percent"] = metrics.fp_percent
        self.obs.inc("pipeline_supervised_runs")
        return StagedResult(
            n_sample=len(sample),
            signatures=signatures,
            metrics=metrics,
            matrix=matrix,
            stages_executed=executed,
            stages_replayed=replayed,
            engine_stats=self.last_engine_stats,
        )

    # -- stage bodies -------------------------------------------------------------

    def _collect(self) -> list[HttpPacket]:
        packets = list(self.trace)
        self.obs.advance(len(packets))
        return packets

    def _payload_check(
        self, packets: list[HttpPacket]
    ) -> tuple[list[HttpPacket], list[HttpPacket]]:
        suspicious, normal = self.payload_check.split(Trace(packets))
        self.obs.advance(len(suspicious) + len(normal))
        return suspicious, normal

    def _sample(
        self, suspicious: list[HttpPacket], sample_size: int, seed: int
    ) -> list[HttpPacket]:
        sample = sample_packets(suspicious, sample_size, seed=seed)
        self.obs.advance(len(sample))
        return sample

    def _distance_matrix(self, sample: list[HttpPacket]) -> CondensedMatrix:
        kwargs = {} if self.chunk_pairs is None else {"chunk_pairs": self.chunk_pairs}
        engine = DistanceEngine(
            self.config.distance,
            workers=self.config.workers,
            obs=self.obs,
            fault_plan=self.fault_plan,
            retry=self.retry,
            **kwargs,
        )
        matrix = engine.matrix(sample)
        self.last_engine_stats = engine.stats
        return matrix

    def _linkage(self, matrix: CondensedMatrix) -> Dendrogram:
        dendrogram = agglomerate(matrix, self.config.linkage)
        self.obs.advance(max(0, matrix.n - 1))
        return dendrogram

    def _cut(self, generator, dendrogram, sample: list[HttpPacket]):
        clusters = generator.clusters_from_dendrogram(dendrogram, sample)
        self.obs.advance(len(clusters))
        return clusters

    def _signature_gen(self, generator, clusters) -> list[ConjunctionSignature]:
        signatures = generator.from_clusters(clusters)
        self.obs.advance(sum(len(cluster) for cluster in clusters))
        return signatures
