"""``repro.supervision`` — supervised pipeline execution (DESIGN.md §6.4).

The detection pipeline is a seven-stage batch job (collect → payload_check
→ sample → distance_matrix → linkage → cut → signature_gen); at production
corpus sizes a run is long enough that "the process died mid-run" is the
expected failure, not the exceptional one.  This package makes the
pipeline restartable without making it non-deterministic:

- :mod:`repro.supervision.checkpoint` — a content-addressed, verified
  checkpoint store keyed by ``sha256(seed + config + stage)``; corrupt
  blobs degrade to recomputation;
- :mod:`repro.supervision.crash` — seeded inter-stage crash injection
  (:class:`CrashPlan`) that kills runs at checkpoint boundaries;
- :mod:`repro.supervision.runner` — :class:`StagedPipeline`, the
  checkpointed executor whose :meth:`~StagedPipeline.resume` replays the
  journaled prefix and recomputes only downstream stages;
- :mod:`repro.supervision.supervisor` — :class:`Supervisor`, the
  restart-with-resume loop guarded by the reliability layer's
  :class:`~repro.reliability.retry.CircuitBreaker`.

The invariant everything here is tested against: a run recovered from any
combination of worker-chunk faults (crash/hang/poison, see
:mod:`repro.reliability.workerfaults`) and inter-stage crashes produces a
condensed distance matrix and signature set **byte-identical** to the
fault-free run with the same seed and configuration.
"""

from repro.supervision.checkpoint import CheckpointStore, JournalEntry, checkpoint_key
from repro.supervision.crash import CrashPlan, InjectedCrash
from repro.supervision.runner import (
    PIPELINE_STAGES,
    StagedPipeline,
    StagedResult,
    config_fingerprint,
)
from repro.supervision.supervisor import SupervisedResult, Supervisor

__all__ = [
    "PIPELINE_STAGES",
    "CheckpointStore",
    "CrashPlan",
    "InjectedCrash",
    "JournalEntry",
    "StagedPipeline",
    "StagedResult",
    "SupervisedResult",
    "Supervisor",
    "checkpoint_key",
    "config_fingerprint",
]
