"""Restart-with-resume supervision over the checkpointed pipeline.

A :class:`Supervisor` wraps a :class:`~repro.supervision.runner.StagedPipeline`
with the reliability primitives the distribution layer already uses: each
crash trips the :class:`~repro.reliability.retry.CircuitBreaker`'s failure
streak; a tripped breaker forces the supervisor to wait out the cooldown
(on the logical tick clock) before the next attempt probes the circuit
half-open.  Every restart resumes — completed stages replay from the
checkpoint store, so attempt *k* only re-executes what attempt *k-1* left
unfinished, and the final outputs are bit-identical to a crash-free run.

Time is logical throughout: ticks advance by one per attempt and by the
breaker cooldown when the circuit is open, so a supervision session
replays exactly for a seed (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SupervisionError
from repro.obs import NULL_OBS, Observability
from repro.reliability.retry import CircuitBreaker
from repro.supervision.crash import InjectedCrash
from repro.supervision.runner import StagedPipeline, StagedResult


@dataclass(slots=True)
class SupervisedResult:
    """A supervised run's outputs plus its recovery ledger.

    :param result: the final :class:`~repro.supervision.runner.StagedResult`.
    :param attempts: total pipeline attempts (1 = crash-free).
    :param restarts: crashes absorbed (``attempts - 1``).
    :param recovered: whether any crash had to be recovered from.
    :param crashes: stages whose boundary each crash fired at, in order.
    :param ticks: logical ticks the supervision session consumed.
    """

    result: StagedResult
    attempts: int
    restarts: int
    recovered: bool
    crashes: list[str]
    ticks: float


class Supervisor:
    """Runs a staged pipeline to completion across injected crashes.

    :param pipeline: the checkpointed pipeline to supervise.
    :param breaker: circuit breaker guarding restarts; the default trips
        after 3 consecutive crashes and cools down for 16 ticks.
    :param max_restarts: crash budget before the supervisor gives up.
    :param obs: optional observability bundle; each attempt emits a
        ``supervisor_attempt`` span and recovery counters
        (``supervisor_restarts``, ``supervisor_breaker_waits``).
    """

    def __init__(
        self,
        pipeline: StagedPipeline,
        *,
        breaker: CircuitBreaker | None = None,
        max_restarts: int = 8,
        obs: Observability | None = None,
    ) -> None:
        if max_restarts < 0:
            raise SupervisionError(f"max_restarts must be >= 0, got {max_restarts}")
        self.pipeline = pipeline
        self.breaker = breaker or CircuitBreaker(failure_threshold=3, cooldown=16.0)
        self.max_restarts = max_restarts
        self.obs = obs or NULL_OBS
        self._tick = 0.0

    @property
    def tick(self) -> float:
        """The supervisor's logical clock."""
        return self._tick

    def run(self, n_sample: int, seed: int = 0) -> SupervisedResult:
        """Drive the pipeline to a result, resuming after every crash.

        :raises SupervisionError: when the restart budget is exhausted
            with the run still crashing.
        """
        crashes: list[str] = []
        for attempt in range(1, self.max_restarts + 2):
            if not self.breaker.allow(self._tick):
                # Circuit is open: wait out the remaining cooldown on the
                # logical clock, then the next allow() admits the probe.
                self._tick += self.breaker.cooldown
                self.obs.inc("supervisor_breaker_waits")
                self.breaker.allow(self._tick)
            self._tick += 1.0
            try:
                with self.obs.span(
                    "supervisor_attempt", track="supervision", attempt=attempt
                ):
                    result = self.pipeline.resume(n_sample, seed=seed)
            except InjectedCrash as crash:
                crashes.append(crash.stage)
                self.breaker.record_failure(self._tick)
                self.obs.inc("supervisor_restarts")
                continue
            self.breaker.record_success()
            self.obs.inc("supervisor_completions")
            return SupervisedResult(
                result=result,
                attempts=attempt,
                restarts=attempt - 1,
                recovered=attempt > 1,
                crashes=crashes,
                ticks=self._tick,
            )
        self.obs.inc("supervisor_giveups")
        raise SupervisionError(
            f"pipeline still crashing after {self.max_restarts} restarts "
            f"(crash points: {crashes})"
        )

    def health(self) -> dict[str, Any]:
        """A point-in-time health snapshot for operators and tests."""
        return {
            "breaker_state": self.breaker.state(self._tick).value,
            "consecutive_failures": self.breaker.consecutive_failures,
            "trips": self.breaker.trips,
            "tick": self._tick,
            "checkpointed_stages": self.pipeline.store.stages,
        }
