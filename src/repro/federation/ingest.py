"""Sharded, validating, replay-proof admission of fleet reports.

:class:`FleetIngest` is the server's front door for crowdsourced reports.
Every submitted envelope runs the same gauntlet, in order:

1. **quarantine check** — reports from a banned device are refused
   outright (cheapest rejection first).  Bans come from a per-device
   :class:`~repro.reliability.retry.CircuitBreaker` tripping on protocol
   violations and are released after a cooldown
   (:class:`~repro.reliability.quarantine.Quarantine` with
   ``release_after_ticks``), so a transiently buggy device is re-admitted
   — and re-tripped just as fast if it keeps misbehaving;
2. **bounded admission** — each shard models a bounded service queue on
   the logical clock; an arrival that finds its shard's queue full is
   *shed* per policy, mirroring the serving gateway: ``DROP`` refuses the
   report (a retryable NACK — ingest fails *closed*, unlike the screening
   gateway's fail-open drop, because aggregation correctness beats
   availability), ``DEGRADE`` validates inline at a higher tick cost,
   bypassing the queue;
3. **validation** — schema, protocol version, and SHA-256 checksum
   (:func:`~repro.federation.report.decode_report`); every failure is a
   counted, typed rejection, never an exception out of the batch;
4. **replay defense** — per-device monotonic sequence numbers with a
   bounded dedup window: a sequence number at or below the device's high
   watermark is rejected as ``DUPLICATE`` (still inside the window — an
   at-least-once transport re-delivering) or ``REPLAY`` (behind the
   window — someone re-sending history).

Shard assignment hashes the device id, so one device's reports always
land on one shard and the per-device ledger never needs cross-shard
coordination.  All decisions are pure functions of the submitted stream
and the logical clock — no wall time, no global RNG — which is what lets
the federation chaos sweep demand bit-identical outcomes under faults.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import FederationError, ReportValidationError
from repro.federation.report import DeviceReport, decode_report
from repro.obs import NULL_OBS, Observability
from repro.reliability.quarantine import Quarantine
from repro.reliability.retry import BreakerState, CircuitBreaker
from repro.serving.gateway import ShedPolicy


class ReportStatus(enum.Enum):
    """How one submitted envelope left the ingest layer."""

    ACCEPTED = "accepted"
    REJECTED_MALFORMED = "rejected_malformed"
    REJECTED_DUPLICATE = "rejected_duplicate"
    REJECTED_REPLAY = "rejected_replay"
    REJECTED_QUARANTINED = "rejected_quarantined"
    SHED_DROPPED = "shed_dropped"

    @property
    def retryable(self) -> bool:
        """Whether an honest sender should re-send this envelope later."""
        return self in (ReportStatus.SHED_DROPPED, ReportStatus.REJECTED_QUARANTINED)


@dataclass(frozen=True, slots=True)
class IngestConfig:
    """Ingest tuning.

    :param n_shards: device-hash partitions of the admission plane.
    :param queue_capacity: per-shard backlog bound (arrivals beyond it shed).
    :param shed_policy: overflow behaviour (``DROP`` = retryable NACK,
        ``DEGRADE`` = inline slow-path validation).
    :param dedup_window: per-device recent-sequence-number window; numbers
        at or below the high watermark but inside the window reject as
        duplicates, behind it as replays.
    :param breaker_threshold: consecutive protocol violations that
        quarantine a device.
    :param quarantine_release_ticks: ban cooldown; the device is
        re-admitted afterwards (and re-banned on its next violation streak).
    :param per_report_ticks: shard service cost per admitted report.
    :param degraded_report_ticks: inline service cost of one DEGRADE-shed
        report (deliberately worse than the batched path).
    """

    n_shards: int = 4
    queue_capacity: int = 64
    shed_policy: ShedPolicy = ShedPolicy.DEGRADE
    dedup_window: int = 128
    breaker_threshold: int = 4
    quarantine_release_ticks: float = 64.0
    per_report_ticks: float = 0.25
    degraded_report_ticks: float = 1.0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise FederationError("n_shards must be >= 1")
        if self.queue_capacity < 1:
            raise FederationError("queue_capacity must be >= 1")
        if self.dedup_window < 1:
            raise FederationError("dedup_window must be >= 1")
        if self.breaker_threshold < 1:
            raise FederationError("breaker_threshold must be >= 1")
        if self.quarantine_release_ticks <= 0:
            raise FederationError("quarantine_release_ticks must be positive")
        if self.per_report_ticks < 0 or self.degraded_report_ticks < 0:
            raise FederationError("service costs must be non-negative")


@dataclass(frozen=True, slots=True)
class SubmitResult:
    """One envelope's verdict.

    :param status: how the envelope left ingest.
    :param report: the validated report for ``ACCEPTED``, else ``None``.
    :param degraded: whether the DEGRADE slow path produced this verdict.
    :param reason: validation-failure category for ``REJECTED_MALFORMED``.
    :param shard: which shard handled (or shed) the envelope.
    :param banned: whether *this* submission tripped the device's breaker
        into quarantine — the signal an incident recorder wants, distinct
        from ``REJECTED_QUARANTINED`` (which marks already-banned devices).
    """

    status: ReportStatus
    report: DeviceReport | None = None
    degraded: bool = False
    reason: str = ""
    shard: int = -1
    banned: bool = False

    @property
    def accepted(self) -> bool:
        return self.status is ReportStatus.ACCEPTED


@dataclass(slots=True)
class _DeviceLedger:
    """Per-device replay-defense and health state."""

    high_watermark: int = 0
    window: list[int] = field(default_factory=list)
    window_set: set[int] = field(default_factory=set)
    breaker: CircuitBreaker | None = None

    def remember(self, seq: int, capacity: int) -> None:
        self.window.append(seq)
        self.window_set.add(seq)
        if len(self.window) > capacity:
            self.window_set.discard(self.window.pop(0))


def shard_for(device_id: str, n_shards: int) -> int:
    """Stable device -> shard assignment (first 8 checksum hex digits)."""
    digest = hashlib.sha256(device_id.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % n_shards


class FleetIngest:
    """The validating admission plane over a sharded logical-clock model.

    :param config: ingest tuning.
    :param obs: optional observability bundle; counters are emitted under
        the ``fed_ingest_*`` prefix and a gauge tracks quarantined devices.
    """

    def __init__(self, config: IngestConfig | None = None, obs: Observability | None = None) -> None:
        self.config = config or IngestConfig()
        self.obs = obs or NULL_OBS
        self.quarantine = Quarantine(
            release_after_ticks=self.config.quarantine_release_ticks
        )
        self._ledgers: dict[str, _DeviceLedger] = {}
        self._shard_busy_until: list[float] = [0.0] * self.config.n_shards
        self.counts: dict[str, int] = {status.value: 0 for status in ReportStatus}
        self.counts["shed_degraded"] = 0
        self.rejection_reasons: dict[str, int] = {}
        self.accepted_total = 0
        self.submitted_total = 0

    # -- internals ----------------------------------------------------------------

    def _ledger(self, device_id: str) -> _DeviceLedger:
        ledger = self._ledgers.get(device_id)
        if ledger is None:
            ledger = _DeviceLedger()
            self._ledgers[device_id] = ledger
        return ledger

    def _shard_backlog(self, shard: int, tick: float) -> int:
        """Reports queued on ``shard`` but not yet served at ``tick``."""
        lag = self._shard_busy_until[shard] - tick
        if lag <= 0:
            return 0
        return math.ceil(lag / self.config.per_report_ticks) if self.config.per_report_ticks else 0

    def _punish(
        self, device_id: str, error: ReportValidationError | None, tick: float, reason: str
    ) -> bool:
        """One protocol violation: extend the streak, maybe quarantine.

        :returns: whether this violation tripped the device into a ban.
        """
        ledger = self._ledger(device_id)
        if ledger.breaker is None:
            ledger.breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                cooldown=self.config.quarantine_release_ticks,
            )
        ledger.breaker.record_failure(tick)
        if ledger.breaker.state(tick) is not BreakerState.OPEN:
            return False
        self.quarantine.ban(
            device_id,
            tick,
            error=error or ReportValidationError(f"violation streak: {reason}", reason=reason),
            reason=reason,
        )
        # The ban owns the cooldown clock from here; a fresh breaker
        # means re-admission starts with a clean streak (and re-trips
        # after another `breaker_threshold` violations, not one).
        ledger.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.quarantine_release_ticks,
        )
        self.obs.inc("fed_ingest_quarantine_bans")
        return True

    def _count(self, status: ReportStatus, degraded: bool) -> None:
        self.counts[status.value] += 1
        if degraded:
            self.counts["shed_degraded"] += 1
        self.obs.inc(f"fed_ingest_{status.value}")
        if degraded:
            self.obs.inc("fed_ingest_shed_degraded")

    # -- the admission gauntlet ----------------------------------------------------

    def submit(self, record: Any, tick: float) -> SubmitResult:
        """Run one envelope through quarantine, admission, validation, dedup.

        :param record: the wire envelope (any JSON-decoded value; garbage
            is handled, not raised).
        :param tick: logical arrival time (non-decreasing across calls).
        :returns: the verdict; ``report`` carries the validated
            :class:`~repro.federation.report.DeviceReport` on acceptance.
        """
        self.submitted_total += 1
        claimed_device = record.get("device_id") if isinstance(record, dict) else None
        device_id = claimed_device if isinstance(claimed_device, str) and claimed_device else ""
        shard = shard_for(device_id, self.config.n_shards)

        # 1. Banned devices are refused before any work is spent on them.
        if device_id and self.quarantine.is_banned(device_id, tick):
            self._count(ReportStatus.REJECTED_QUARANTINED, degraded=False)
            return SubmitResult(status=ReportStatus.REJECTED_QUARANTINED, shard=shard)
        self.obs.set_gauge(
            "fed_ingest_quarantined_devices", len(self.quarantine.banned_members(tick))
        )

        # 2. Bounded admission: shed when the shard's queue is full.
        degraded = False
        backlog = self._shard_backlog(shard, tick)
        self.obs.observe("fed_ingest_backlog", backlog)
        if backlog >= self.config.queue_capacity:
            if self.config.shed_policy is ShedPolicy.DROP:
                self._count(ReportStatus.SHED_DROPPED, degraded=False)
                return SubmitResult(status=ReportStatus.SHED_DROPPED, shard=shard)
            degraded = True  # DEGRADE: validate inline, off the queue.

        # 3. Validation (schema + version + checksum + packet parse).
        try:
            report = decode_report(record)
        except ReportValidationError as exc:
            self.rejection_reasons[exc.reason] = self.rejection_reasons.get(exc.reason, 0) + 1
            banned = False
            if device_id:
                banned = self._punish(device_id, exc, tick, exc.reason)
            self._count(ReportStatus.REJECTED_MALFORMED, degraded=degraded)
            return SubmitResult(
                status=ReportStatus.REJECTED_MALFORMED,
                degraded=degraded,
                reason=exc.reason,
                shard=shard,
                banned=banned,
            )

        # 4. Replay defense: monotonic sequence + bounded dedup window.
        ledger = self._ledger(report.device_id)
        if report.seq <= ledger.high_watermark:
            if report.seq in ledger.window_set:
                status = ReportStatus.REJECTED_DUPLICATE
                reason = "duplicate"
            else:
                status = ReportStatus.REJECTED_REPLAY
                reason = "replay"
            banned = self._punish(report.device_id, None, tick, reason)
            self._count(status, degraded=degraded)
            return SubmitResult(
                status=status, degraded=degraded, reason=reason, shard=shard, banned=banned
            )

        # Accepted: advance the ledger and charge the service cost.
        ledger.high_watermark = report.seq
        ledger.remember(report.seq, self.config.dedup_window)
        if ledger.breaker is not None:
            ledger.breaker.record_success()
        if degraded:
            cost = self.config.degraded_report_ticks
        else:
            cost = self.config.per_report_ticks
            self._shard_busy_until[shard] = max(self._shard_busy_until[shard], tick) + cost
        self.accepted_total += 1
        self._count(ReportStatus.ACCEPTED, degraded=degraded)
        self.obs.advance(1)
        return SubmitResult(
            status=ReportStatus.ACCEPTED, report=report, degraded=degraded, shard=shard
        )

    # -- health -------------------------------------------------------------------

    def devices_seen(self) -> int:
        """Devices with at least one accepted report."""
        return sum(1 for ledger in self._ledgers.values() if ledger.high_watermark > 0)

    def stats(self) -> dict[str, Any]:
        """Counter snapshot for reports and tests (stable key order)."""
        return {
            "submitted": self.submitted_total,
            "accepted": self.accepted_total,
            "devices_seen": self.devices_seen(),
            "counts": dict(sorted(self.counts.items())),
            "rejection_reasons": dict(sorted(self.rejection_reasons.items())),
            "quarantine": {
                "bans": self.quarantine.bans,
                "releases": self.quarantine.releases,
                "reasons": self.quarantine.summary(),
            },
        }
