"""The fleet-scale federation bench behind ``repro federate``.

Two arms over the same corpus and the same injected fault mix:

- **fleet** — 10\\ :sup:`4`-device federation with the k-anonymity
  min-support gate; the arm that measures ingest throughput at scale;
- **single** — one heavily-instrumented lab device (the paper's original
  capture shape) with ``min_support=1``, i.e. no crowd to corroborate
  against, so fabricated poison observations flow straight into its
  signature material.

The report compares the arms on **precision** (signature screening over
the labelled corpus: flagged-suspicious / flagged-anything) and
**material purity** (fraction of signature material that is genuine
observed traffic rather than adversarial fabrication).  The budget fails
CI when federation stops paying for itself: federated precision must
match or beat the single device and federated material must be 100 %
genuine — the k-gate's whole job.

Output mirrors ``BENCH_serving.json``: ``to_dict()`` / ``render()`` /
``save()`` plus budget violations that drive the CI exit code.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.eval.perf import cpu_count
from repro.federation.aggregate import InMemorySupportStore
from repro.federation.faults import DeviceFaultPlan
from repro.federation.fleet import FederationResult, run_federation
from repro.federation.ingest import IngestConfig
from repro.http.packet import HttpPacket
from repro.signatures.matcher import SignatureMatcher
from repro.simulation.corpus import Corpus, build_corpus


@dataclass(frozen=True, slots=True)
class FederationBudget:
    """Gates the federation bench enforces (``None`` disables a gate).

    :param min_precision_gain: floor on ``federated - single`` precision
        (``0.0`` = federation must match or beat the single device).
    :param require_pure_material: demand zero fabricated packets in the
        federated arm's signature material.
    :param min_throughput_per_s: floor on fleet-arm wall-clock ingest
        throughput (submissions per second).
    """

    min_precision_gain: float | None = 0.0
    require_pure_material: bool = True
    min_throughput_per_s: float | None = 500.0

    def violations(self, report: "FederationReport") -> list[str]:
        found: list[str] = []
        fleet = report.arm("fleet")
        single = report.arm("single")
        if fleet is None or single is None:
            return ["bench did not produce both arms"]
        if self.min_precision_gain is not None:
            gain = fleet["precision"] - single["precision"]
            if gain < self.min_precision_gain - 1e-9:
                found.append(
                    f"federated precision {fleet['precision']:.4f} fell below "
                    f"single-device {single['precision']:.4f} "
                    f"(gain {gain:+.4f} < {self.min_precision_gain:+.4f})"
                )
        if self.require_pure_material and fleet["material_fabricated"] > 0:
            found.append(
                f"k-gate leaked {fleet['material_fabricated']} fabricated "
                "packets into federated signature material"
            )
        if (
            self.min_throughput_per_s is not None
            and fleet["throughput_per_s"] < self.min_throughput_per_s
        ):
            found.append(
                f"fleet ingest throughput {fleet['throughput_per_s']:.0f}/s "
                f"< {self.min_throughput_per_s:.0f}/s"
            )
        if fleet["accepted"] == 0:
            found.append("fleet arm accepted no reports")
        if fleet["admitted_tokens"] == 0:
            found.append("k-gate admitted no tokens at fleet scale")
        return found

    def to_dict(self) -> dict[str, Any]:
        return {
            "min_precision_gain": self.min_precision_gain,
            "require_pure_material": self.require_pure_material,
            "min_throughput_per_s": self.min_throughput_per_s,
        }


@dataclass(slots=True)
class FederationReport:
    """One federation bench run, ready for ``BENCH_federation.json``."""

    n_apps: int
    seed: int
    fault_rate: float
    min_support: int
    arms: list[dict[str, Any]] = field(default_factory=list)
    budget: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    def arm(self, name: str) -> dict[str, Any] | None:
        for arm in self.arms:
            if arm["name"] == name:
                return arm
        return None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": "federation",
            "corpus": {"n_apps": self.n_apps, "seed": self.seed},
            "fault_rate": self.fault_rate,
            "min_support": self.min_support,
            "cpu_count": cpu_count(),
            "arms": self.arms,
            "budget": self.budget,
            "violations": self.violations,
            "ok": self.ok,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def render(self) -> str:
        """Fixed-width human summary, in the repo's report style."""
        lines = [
            "Federation bench — crowdsourced ingest + k-anonymity min-support",
            f"  corpus apps={self.n_apps} seed={self.seed} "
            f"fault_rate={self.fault_rate:.2f} k={self.min_support}",
            f"  {'arm':<8} {'devices':>8} {'sends':>8} {'accepted':>9} "
            f"{'tokens':>7} {'sigs':>5} {'precision':>10} {'purity':>7} {'thru/s':>9}",
        ]
        for arm in self.arms:
            purity = 1.0 - (
                arm["material_fabricated"] / arm["material_size"]
                if arm["material_size"]
                else 0.0
            )
            lines.append(
                f"  {arm['name']:<8} {arm['n_devices']:>8d} {arm['sends']:>8d} "
                f"{arm['accepted']:>9d} {arm['admitted_tokens']:>7d} "
                f"{arm['n_signatures']:>5d} {arm['precision']:>10.4f} "
                f"{purity:>7.3f} {arm['throughput_per_s']:>9.0f}"
            )
        fleet = self.arm("fleet")
        if fleet is not None:
            quarantine = fleet["ingest"]["quarantine"]
            counts = fleet["ingest"]["counts"]
            lines.append(
                f"  fleet: dedup rejects={counts['rejected_duplicate']} "
                f"replays={counts['rejected_replay']} "
                f"malformed={counts['rejected_malformed']} "
                f"quarantine bans={quarantine['bans']} releases={quarantine['releases']}"
            )
        if self.violations:
            lines.append("  BUDGET VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  budget: ok")
        return "\n".join(lines)


def _precision(
    signatures: list, suspicious: list[HttpPacket], negatives: list[HttpPacket]
) -> float:
    """Flagged-suspicious over flagged-anything.

    ``negatives`` is the labelled normal traffic **plus the adversarial
    fabrication pool** — the byzantine devices' accepted lies.  A set
    whose signatures fire on fabrications is paying the poison tax (user
    prompts on traffic no honest device produces); the k-gate exists to
    zero that term.  An empty or nothing-flagging signature set scores 0
    — a bench arm that detects nothing must not win on a technicality.
    """
    matcher = SignatureMatcher(signatures)
    flagged_true = sum(1 for packet in suspicious if matcher.match(packet).matched)
    flagged_false = sum(1 for packet in negatives if matcher.match(packet).matched)
    flagged = flagged_true + flagged_false
    return flagged_true / flagged if flagged else 0.0


def _arm_dict(
    name: str,
    result: FederationResult,
    wall_s: float,
    suspicious: list[HttpPacket],
    negatives: list[HttpPacket],
) -> dict[str, Any]:
    """Summarize one bench arm for the report."""
    fabricated = sum(1 for packet in result.material if packet.meta.get("fabricated"))
    return {
        "name": name,
        "n_devices": result.n_devices,
        "reports_per_device": result.reports_per_device,
        "min_support": result.min_support,
        "sends": result.sends,
        "accepted": result.ingest_stats["accepted"],
        "admitted_tokens": len(result.admitted_tokens),
        "material_size": result.material_size,
        "material_fabricated": fabricated,
        "n_signatures": len(result.signatures),
        "precision": round(_precision(result.signatures, suspicious, negatives), 4),
        "final_tick": round(result.final_tick, 2),
        "wall_s": round(wall_s, 4),
        "throughput_per_s": round(result.sends / wall_s, 1) if wall_s else 0.0,
        "ingest": result.ingest_stats,
        "aggregate": result.aggregate_stats,
        "faults": result.fault_counts,
    }


def run_federation_bench(
    *,
    n_apps: int = 48,
    n_devices: int = 10_000,
    reports_per_device: int = 3,
    single_device_reports: int = 384,
    min_support: int = 3,
    fault_rate: float = 0.2,
    seed: int = 0,
    n_shards: int = 16,
    budget: FederationBudget | None = None,
    corpus: Corpus | None = None,
) -> FederationReport:
    """Run the fleet and single-device arms and compare them.

    Both arms face the same uniform fault mix at ``fault_rate``; the
    fleet arm gets the k-gate, the single device cannot have one
    (``min_support=1`` — there is no crowd).  Deterministic apart from
    wall-clock timings.
    """
    budget = budget or FederationBudget()
    corpus = corpus or build_corpus(n_apps=n_apps, seed=seed)
    check = corpus.payload_check()
    suspicious, normal = check.split(corpus.trace)

    report = FederationReport(
        n_apps=corpus.n_apps,
        seed=seed,
        fault_rate=fault_rate,
        min_support=min_support,
        budget=budget.to_dict(),
    )

    arms = (
        (
            "fleet",
            dict(
                n_devices=n_devices,
                reports_per_device=reports_per_device,
                min_support=min_support,
                fault_plan=DeviceFaultPlan.uniform(fault_rate, seed=seed + 1),
                ingest_config=IngestConfig(n_shards=n_shards),
                store=InMemorySupportStore(exemplars_per_token=2),
            ),
        ),
        (
            "single",
            dict(
                n_devices=1,
                reports_per_device=single_device_reports,
                min_support=1,
                fault_plan=DeviceFaultPlan.uniform(fault_rate, seed=seed + 1),
                ingest_config=IngestConfig(n_shards=n_shards),
                store=InMemorySupportStore(exemplars_per_token=2),
            ),
        ),
    )
    runs: list[tuple[str, Any, float]] = []
    for name, kwargs in arms:
        started = time.perf_counter()
        result = run_federation(corpus, seed=seed, **kwargs)
        runs.append((name, result, time.perf_counter() - started))

    # Both arms screen the same world: labelled corpus traffic plus every
    # fabrication byzantine devices slipped past validation in either arm.
    fabricated_pool: list[HttpPacket] = []
    for _, result, _ in runs:
        fabricated_pool.extend(result.fabricated_pool)
    negatives = normal + fabricated_pool
    for name, result, wall_s in runs:
        report.arms.append(_arm_dict(name, result, wall_s, suspicious, negatives))

    report.violations = budget.violations(report)
    return report
