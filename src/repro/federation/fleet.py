"""The federation round: fleet substreams -> faulty transport -> signatures.

:func:`run_federation` drives one end-to-end crowdsourcing round on the
logical clock:

1. every simulated device replays its independent suspicious-packet
   substream (:meth:`~repro.serving.loadgen.FleetLoadGenerator.device_events`)
   and compiles it into a *send script* — honest envelopes plus whatever
   junk its :class:`~repro.federation.faults.DeviceFaultPlan` outcome
   injects (corrupted attempts, duplicate/replay/flood copies, fabricated
   poison reports appended after the honest stream);
2. a heap-merged transport delivers sends across devices in tick order;
   each device is strictly sequential — an honest envelope is retried
   (exponential backoff) until accepted before the next is sent, which is
   what per-device sequence monotonicity demands of a real uploader;
3. accepted reports flow into the
   :class:`~repro.federation.aggregate.FederatedAggregator`; after the
   fleet drains, the k-anonymity min-support gate selects signature
   material and the standard cluster + generate pipeline runs over it.

Determinism inventory (why the chaos sweep can demand byte-identity):
honest wire sequence numbers equal the device-local observation index, so
faults never shift them; poison fabrications consume only tail sequence
numbers; per-device acceptance order is always sequence order; and the
aggregate is a pure function of the accepted-contribution set.  The only
thing faults can change is *when* things happen — never what the fleet
agreed on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.core.pipeline import PipelineConfig
from repro.errors import FederationError
from repro.eval.crossval import generate_from
from repro.federation.aggregate import FederatedAggregator, SupportStore
from repro.federation.faults import DeviceFaultKind, DeviceFaultPlan
from repro.federation.ingest import FleetIngest, IngestConfig, ReportStatus
from repro.federation.report import DeviceReport, encode_report, token_for
from repro.http.packet import HttpPacket
from repro.obs import NULL_OBS, Observability
from repro.reliability.retry import RetryPolicy
from repro.serving.loadgen import FleetLoadGenerator, LoadProfile
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore
from repro.simulation.corpus import Corpus
from repro.simulation.rng import derive_rng

#: Logical gap between consecutive sends from one device's uploader.
_SEND_GAP = 0.01

#: Per-envelope delivery-attempt cap; an honest envelope still unaccepted
#: after this many tries means the admission plane livelocked — fail loudly.
_MAX_ATTEMPTS = 64


@dataclass(slots=True)
class _Send:
    """One scripted transmission from a device's uploader.

    :param record: the wire envelope (possibly deliberately corrupted).
    :param must_deliver: retry until accepted (honest + poison payloads)
        versus fire-and-forget junk (corrupted attempts, copies).
    :param base_tick: earliest logical send time (``None`` = as soon as
        the uploader gets there).
    """

    record: dict[str, Any]
    must_deliver: bool
    base_tick: float | None = None


@dataclass(slots=True)
class _Uploader:
    """One device's sequential transport cursor."""

    device_id: str
    script: list[_Send]
    index: int = 0
    retries: int = 0
    ready_tick: float = 0.0

    def current(self) -> _Send:
        return self.script[self.index]

    def done(self) -> bool:
        return self.index >= len(self.script)


@dataclass(slots=True)
class FederationResult:
    """Everything one federation round produced.

    :param n_devices: fleet size driven.
    :param reports_per_device: honest observations per device.
    :param min_support: the k-anonymity gate applied.
    :param signatures: the generated signature set.
    :param signature_bytes: canonical serialization of ``signatures`` —
        the byte-identity handle the chaos sweep compares.
    :param admitted_tokens: tokens that passed the min-support gate.
    :param material_size: packets handed to the generation pipeline.
    :param sends: total transport-level submissions (honest + junk + retries).
    :param final_tick: logical time when the fleet drained.
    :param ingest_stats: :meth:`FleetIngest.stats` snapshot.
    :param aggregate_stats: :meth:`FederatedAggregator.stats` snapshot.
    :param fault_counts: injected-fault tally by kind.
    :param material: the signature material the k-gate admitted.
    :param fabricated_pool: every fabricated packet poison devices got
        *accepted* this round (gate-independent) — the adversarial traffic
        an evaluation must screen against.
    """

    n_devices: int
    reports_per_device: int
    min_support: int
    signatures: list[ConjunctionSignature]
    signature_bytes: str
    admitted_tokens: list[str]
    material_size: int
    sends: int
    final_tick: float
    ingest_stats: dict[str, Any] = field(default_factory=dict)
    aggregate_stats: dict[str, Any] = field(default_factory=dict)
    fault_counts: dict[str, int] = field(default_factory=dict)
    material: list[HttpPacket] = field(default_factory=list)
    fabricated_pool: list[HttpPacket] = field(default_factory=list)

    def summary(self) -> dict[str, Any]:
        """JSON-ready digest for CLI output and bench reports."""
        return {
            "n_devices": self.n_devices,
            "reports_per_device": self.reports_per_device,
            "min_support": self.min_support,
            "n_signatures": len(self.signatures),
            "admitted_tokens": len(self.admitted_tokens),
            "material_size": self.material_size,
            "sends": self.sends,
            "final_tick": round(self.final_tick, 3),
            "ingest": self.ingest_stats,
            "aggregate": self.aggregate_stats,
            "faults": dict(sorted(self.fault_counts.items())),
        }


def _compile_script(
    device_index: int,
    loadgen: FleetLoadGenerator,
    reports_per_device: int,
    plan: DeviceFaultPlan,
) -> list[_Send]:
    """One device's full send script: honest stream plus injected junk.

    Honest observation ``j`` (0-based) always travels with wire sequence
    number ``j + 1`` regardless of fault outcomes, and poison fabrications
    take tail numbers after the honest stream — the invariant that keeps
    the accepted honest set identical across fault rates.
    """
    device_id = loadgen.device_id(device_index)
    events = loadgen.device_events(device_index, reports_per_device)
    script: list[_Send] = []
    accepted_records: list[dict[str, Any]] = []
    poison_triggers: list[int] = []
    for event in events:
        seq = event.seq + 1
        report = DeviceReport(
            device_id=device_id, seq=seq, token=token_for(event.packet), packet=event.packet
        )
        record = encode_report(report)
        kind = plan.outcome(device_id, seq)
        plan.record(kind)
        if kind is DeviceFaultKind.MALFORM:
            for attempt in range(plan.malform_attempts(device_id, seq)):
                script.append(
                    _Send(
                        record=plan.mangle(record, device_id, seq, attempt),
                        must_deliver=False,
                        base_tick=event.tick,
                    )
                )
        script.append(_Send(record=record, must_deliver=True, base_tick=event.tick))
        accepted_records.append(record)
        if kind is DeviceFaultKind.DUPLICATE:
            script.append(_Send(record=record, must_deliver=False))
        elif kind is DeviceFaultKind.REPLAY:
            target = plan.replay_target(device_id, seq)
            script.append(_Send(record=accepted_records[target - 1], must_deliver=False))
        elif kind is DeviceFaultKind.FLOOD:
            for _ in range(plan.flood_copies(device_id, seq)):
                script.append(_Send(record=record, must_deliver=False))
        elif kind is DeviceFaultKind.POISON:
            poison_triggers.append(seq)
    next_seq = len(events) + 1
    for trigger_seq in poison_triggers:
        template = DeviceReport(
            device_id=device_id,
            seq=next_seq,
            token="",  # replaced by the fabricated token
            packet=events[trigger_seq - 1].packet,
        )
        fabricated = plan.fabricate(template, next_seq)
        script.append(_Send(record=encode_report(fabricated), must_deliver=True))
        next_seq += 1
    return script


def run_federation(
    corpus: Corpus,
    *,
    seed: int = 0,
    n_devices: int = 16,
    reports_per_device: int = 8,
    min_support: int = 3,
    fault_plan: DeviceFaultPlan | None = None,
    ingest_config: IngestConfig | None = None,
    store: SupportStore | None = None,
    contribution_cap: int = 64,
    profile: LoadProfile | None = None,
    pipeline_config: PipelineConfig | None = None,
    obs: Observability | None = None,
) -> FederationResult:
    """Run one crowdsourced signature-generation round.

    :param corpus: the simulated population; devices replay its
        locally-flagged suspicious pool.
    :param seed: determinism root for substreams, faults, and backoff.
    :param n_devices: fleet size.
    :param reports_per_device: honest observations per device.
    :param min_support: the k-anonymity gate (tokens need this many
        distinct supporting devices to become signature material).
    :param fault_plan: injected fleet faults (default: fault-free).
    :param ingest_config: admission tuning.
    :param store: support storage (default: fresh in-memory).
    :param contribution_cap: distinct tokens one device may introduce.
    :param profile: offered-load shape for the device substreams.
    :param pipeline_config: cluster + generate configuration.
    :param obs: optional observability bundle, shared with ingest.
    :raises FederationError: when an honest envelope cannot be delivered
        within the attempt cap (an admission-plane livelock, never
        expected under the shipped configurations).
    """
    if n_devices < 1:
        raise FederationError("n_devices must be >= 1")
    if reports_per_device < 1:
        raise FederationError("reports_per_device must be >= 1")
    obs = obs or NULL_OBS
    plan = fault_plan or DeviceFaultPlan(seed=seed)
    check = corpus.payload_check()
    suspicious, _normal = check.split(corpus.trace)
    if not suspicious:
        raise FederationError("corpus has no suspicious packets for devices to report")
    loadgen = FleetLoadGenerator(corpus, profile, seed=seed, packets=suspicious)
    ingest = FleetIngest(ingest_config, obs=obs)
    aggregator = FederatedAggregator(store, contribution_cap=contribution_cap, obs=obs)
    retry_policy = RetryPolicy(max_attempts=_MAX_ATTEMPTS, base_delay=1.0, multiplier=2.0,
                               max_delay=ingest.config.quarantine_release_ticks)

    # Compile every device's script, then heap-merge sends in tick order.
    heap: list[tuple[float, str, int]] = []
    uploaders: dict[str, _Uploader] = {}
    for device_index in range(n_devices):
        script = _compile_script(device_index, loadgen, reports_per_device, plan)
        device_id = loadgen.device_id(device_index)
        uploader = _Uploader(device_id=device_id, script=script)
        first = script[0]
        uploader.ready_tick = first.base_tick if first.base_tick is not None else 0.0
        uploaders[device_id] = uploader
        heapq.heappush(heap, (uploader.ready_tick, device_id, device_index))

    sends = 0
    final_tick = 0.0
    while heap:
        tick, device_id, device_index = heapq.heappop(heap)
        uploader = uploaders[device_id]
        send = uploader.current()
        result = ingest.submit(send.record, tick)
        sends += 1
        final_tick = max(final_tick, tick)
        if send.must_deliver and not result.accepted:
            if not result.status.retryable:
                raise FederationError(
                    f"honest envelope from {device_id} rejected terminally "
                    f"({result.status.value}: {result.reason})"
                )
            if uploader.retries + 1 >= _MAX_ATTEMPTS:
                raise FederationError(
                    f"honest envelope from {device_id} exceeded "
                    f"{_MAX_ATTEMPTS} delivery attempts"
                )
            backoff_rng = derive_rng(seed, "fed-retry", device_id, str(uploader.index),
                                     str(uploader.retries))
            uploader.ready_tick = tick + retry_policy.backoff(uploader.retries, backoff_rng)
            uploader.retries += 1
            heapq.heappush(heap, (uploader.ready_tick, device_id, device_index))
            continue
        if result.accepted and result.report is not None:
            aggregator.accept(result.report)
        uploader.index += 1
        uploader.retries = 0
        if not uploader.done():
            nxt = uploader.current()
            ready = tick + _SEND_GAP
            if nxt.base_tick is not None:
                ready = max(ready, nxt.base_tick)
            uploader.ready_tick = ready
            heapq.heappush(heap, (ready, device_id, device_index))

    # The k-gate, then the standard generation pipeline over admitted material.
    admitted = aggregator.admitted_tokens(min_support)
    material = aggregator.admitted_material(min_support)
    if len(material) >= 2:
        signatures = generate_from(material, pipeline_config)
    else:
        signatures = []
    fabricated_pool = [
        packet
        for packet in aggregator.admitted_material(1)
        if packet.meta.get("fabricated")
    ]
    obs.set_gauge("fed_admitted_tokens", len(admitted))
    obs.set_gauge("fed_signatures", len(signatures))
    return FederationResult(
        n_devices=n_devices,
        reports_per_device=reports_per_device,
        min_support=min_support,
        signatures=signatures,
        signature_bytes=SignatureStore.dumps(signatures),
        admitted_tokens=admitted,
        material_size=len(material),
        sends=sends,
        final_tick=final_tick,
        ingest_stats=ingest.stats(),
        aggregate_stats=aggregator.stats(),
        fault_counts={kind.value: count for kind, count in sorted(
            plan.counts.items(), key=lambda item: item[0].value)},
        material=material,
        fabricated_pool=fabricated_pool,
    )
