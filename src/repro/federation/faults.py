"""Seeded, deterministic fault injection for fleet reporters.

:class:`~repro.reliability.faults.FaultPlan` models an unreliable network,
:class:`~repro.reliability.workerfaults.WorkerFaultPlan` an unreliable
compute fleet; :class:`DeviceFaultPlan` models an unreliable (and partly
hostile) *reporting fleet*.  The unit of failure is one device report.

The taxonomy (FlowIntent's stance: treat unexplained traffic as hostile
until corroborated):

- ``MALFORM`` — the envelope arrives corrupted (bad checksum, truncated
  fields, version skew, mistyped sequence).  Ingest rejects it; the honest
  device retries until a clean copy lands, so no observation is lost.
- ``DUPLICATE`` — the device's uploader re-sends an already-accepted
  envelope (an at-least-once transport doing its thing).  The dedup
  window must reject the copy.
- ``REPLAY`` — an *old* envelope (an earlier sequence number) is sent
  again, the classic replay attack.  Sequence monotonicity must reject it.
- ``POISON`` — the device lies: it fabricates an observation no other
  device ever saw (a made-up token with a made-up payload).  Validation
  *accepts* it — it is well-formed — and the k-anonymity min-support gate
  must keep it out of signature material.
- ``FLOOD`` — the device spams copies of one envelope, stressing bounded
  admission and the dedup window at once.

Outcomes are a pure function of ``(seed, device_id, seq[, attempt])``, so
the same plan replays identically regardless of fleet size or interleaving
— the property behind the federation chaos sweep's byte-identity verdict.
Fabricated poison material embeds the fabricator's identity, so two
uncoordinated poisoners can never collude on a token by accident.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Any

from repro.errors import SimulationError
from repro.federation.report import DeviceReport
from repro.http.message import HttpRequest
from repro.http.packet import HttpPacket
from repro.simulation.rng import derive_rng


class DeviceFaultKind(enum.Enum):
    """What happens to one device report on its way to the server."""

    NONE = "none"
    MALFORM = "malform"
    DUPLICATE = "duplicate"
    REPLAY = "replay"
    POISON = "poison"
    FLOOD = "flood"


#: Envelope corruption modes MALFORM draws from (each must fail validation).
_MALFORM_MODES: tuple[str, ...] = ("checksum", "truncate", "version", "seqtype")


class DeviceFaultPlan:
    """A seeded injector of fleet-report faults.

    Rates are independent probabilities that must sum to at most 1; the
    remainder is the clean-delivery probability.

    :param seed: determinism root; equal seeds and rates produce identical
        outcomes for every ``(device_id, seq)``.
    :param malform: probability a report's first attempts arrive corrupted.
    :param duplicate: probability an accepted report is re-sent verbatim.
    :param replay: probability an older envelope is re-sent afterwards.
    :param poison: probability the device also uploads a fabricated report.
    :param flood: probability the device spams extra copies of a report.
    :raises SimulationError: for rates outside ``[0, 1]`` or summing past 1.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        malform: float = 0.0,
        duplicate: float = 0.0,
        replay: float = 0.0,
        poison: float = 0.0,
        flood: float = 0.0,
    ) -> None:
        rates = {
            DeviceFaultKind.MALFORM: malform,
            DeviceFaultKind.DUPLICATE: duplicate,
            DeviceFaultKind.REPLAY: replay,
            DeviceFaultKind.POISON: poison,
            DeviceFaultKind.FLOOD: flood,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{kind.value} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-9:
            raise SimulationError(f"fault rates sum to {sum(rates.values()):.3f} > 1")
        self.seed = seed
        self.rates = rates
        #: Server-side outcome tally (the uploader records what it injected).
        self.counts: Counter[DeviceFaultKind] = Counter()

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "DeviceFaultPlan":
        """A plan spreading ``rate`` across the whole taxonomy.

        Split 30 % malform / 20 % duplicate / 20 % replay / 15 % poison /
        15 % flood — the mix the federation chaos sweep uses.
        """
        return cls(
            seed=seed,
            malform=0.30 * rate,
            duplicate=0.20 * rate,
            replay=0.20 * rate,
            poison=0.15 * rate,
            flood=0.15 * rate,
        )

    @property
    def total_rate(self) -> float:
        """Combined probability that *some* fault fires per report."""
        return sum(self.rates.values())

    @property
    def faults_recorded(self) -> int:
        """Non-clean outcomes recorded so far."""
        return sum(count for kind, count in self.counts.items() if kind is not DeviceFaultKind.NONE)

    def record(self, kind: DeviceFaultKind) -> None:
        """Tally one observed outcome (uploader-side bookkeeping)."""
        self.counts[kind] += 1

    # -- draws (all pure functions of seed + labels) -------------------------------

    def outcome(self, device_id: str, seq: int) -> DeviceFaultKind:
        """The fault (if any) attached to one report."""
        rng = derive_rng(self.seed, "device-fault", device_id, str(seq))
        point = rng.random()
        cumulative = 0.0
        for kind, rate in self.rates.items():
            cumulative += rate
            if point < cumulative:
                return kind
        return DeviceFaultKind.NONE

    def malform_attempts(self, device_id: str, seq: int) -> int:
        """How many corrupted attempts precede the clean copy (1-2)."""
        rng = derive_rng(self.seed, "device-malform-n", device_id, str(seq))
        return 1 + rng.randrange(2)

    def mangle(self, record: dict[str, Any], device_id: str, seq: int, attempt: int) -> dict[str, Any]:
        """Deterministically corrupt one envelope for a MALFORM attempt.

        Picks a corruption mode that validation is guaranteed to catch —
        the fault model is "detected garbage", never "silent garbage"
        (silent lies are POISON's job, and min-support's problem).
        """
        rng = derive_rng(self.seed, "device-mangle", device_id, str(seq), str(attempt))
        mode = _MALFORM_MODES[rng.randrange(len(_MALFORM_MODES))]
        mangled = dict(record)
        if mode == "checksum":
            mangled["checksum"] = "0" * 64
        elif mode == "truncate":
            mangled.pop("packet", None)
        elif mode == "version":
            mangled["format_version"] = 0
        else:  # seqtype
            mangled["seq"] = str(mangled.get("seq"))
        return mangled

    def replay_target(self, device_id: str, seq: int) -> int:
        """Which earlier sequence number a REPLAY re-sends (1-based)."""
        if seq <= 1:
            return 1
        rng = derive_rng(self.seed, "device-replay", device_id, str(seq))
        return 1 + rng.randrange(seq - 1)

    def flood_copies(self, device_id: str, seq: int) -> int:
        """Extra verbatim copies a FLOOD burst sends (2-5)."""
        rng = derive_rng(self.seed, "device-flood", device_id, str(seq))
        return 2 + rng.randrange(4)

    def fabricate(self, template: DeviceReport, seq: int) -> DeviceReport:
        """A POISON device's lie: a well-formed report nobody corroborates.

        The fabrication is *structurally novel* — its own path, parameter
        names, and body, sharing nothing but the destination with the
        template — because a poisoner's goal is to trick the server into
        signing traffic shapes no honest device produces (and so spamming
        every fleet user with false prompts).  The fabricated token and
        payload embed ``(device_id, seq)`` plus seeded entropy, so no two
        fabrications — even from the same device — collide.  The envelope
        validates perfectly; only distinct-device support can reveal it
        for what it is.
        """
        rng = derive_rng(self.seed, "device-poison", template.device_id, str(seq))
        marker = f"{template.device_id}-{seq}-{rng.getrandbits(48):012x}"
        body = f"uid={marker}&burst={rng.randrange(10 ** 6)}".encode("ascii")
        source = template.packet.request
        request = HttpRequest(
            method="POST",
            target=f"/beacon/{marker}?cb={rng.randrange(10 ** 9)}",
            version=source.version,
            headers=[
                (name, value)
                for name, value in source.headers
                if name.lower() in ("host", "user-agent")
            ],
            body=body,
        )
        request.set_header("Content-Type", "application/x-www-form-urlencoded")
        request.set_header("Content-Length", str(len(body)))
        packet = HttpPacket(
            destination=template.packet.destination,
            request=request,
            app_id=template.packet.app_id,
            timestamp=template.packet.timestamp,
            meta={"fabricated": True},
        )
        return DeviceReport(
            device_id=template.device_id,
            seq=seq,
            token=f"POISON {marker}",
            packet=packet,
        )
