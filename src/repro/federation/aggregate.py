"""Cross-device aggregation: distinct-device support and the k-gate.

:class:`FederatedAggregator` turns accepted device reports into *signature
material* under two byzantine defenses:

- **per-device contribution caps** — one device may introduce at most
  ``contribution_cap`` distinct tokens, so a sybil or flooder cannot
  inflate the token universe no matter how fast it talks (counting a
  token *again* from the same device is free and changes nothing — support
  is a set of devices, not a tally of reports);
- **k-anonymity min-support** — a token becomes signature material only
  once seen on at least ``k`` distinct devices.  This is the PrivacyProxy
  insight inverted into a false-positive killer: identifiers that are
  *supposed* to differ per device (UDIDs, fabricated poison payloads, one
  user's idiosyncratic traffic) never reach ``k`` distinct reporters, so
  they can never contaminate the fleet's signatures.

Storage is pluggable behind :class:`SupportStore`, in the style of
:class:`~repro.supervision.checkpoint.CheckpointStore`:
:class:`InMemorySupportStore` for benches and tests,
:class:`DirSupportStore` for an append-only JSONL journal a fresh process
replays on construction — the cross-process aggregation-resume path.

Determinism contract: :meth:`FederatedAggregator.admitted_material` is a
pure function of the *set* of accepted contributions — exemplars are
selected by smallest ``(device_id, seq)`` and the result is sorted and
content-deduplicated — so report arrival order (which faults, retries,
and shedding perturb) can never change the signature material.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import FederationError
from repro.federation.report import DeviceReport
from repro.http.packet import HttpPacket
from repro.obs import NULL_OBS, Observability

import enum


class AcceptOutcome(enum.Enum):
    """What one accepted report contributed to the aggregate."""

    COUNTED = "counted"  # new (token, device) support pair
    REPEAT = "repeat"  # device already supports this token
    CAPPED = "capped"  # device at its distinct-token contribution cap


@dataclass(slots=True)
class _TokenSupport:
    """Everything known about one token across the fleet."""

    devices: set[str] = field(default_factory=set)
    #: device_id -> (seq, packet record) — first (lowest-seq) observation
    #: per device; bounded to the aggregator's exemplar budget by keeping
    #: the smallest (device_id, seq) pairs.
    exemplars: dict[str, tuple[int, dict[str, Any]]] = field(default_factory=dict)


class SupportStore:
    """Interface for per-token support state (see module docstring)."""

    def add(self, token: str, device_id: str, seq: int, packet_record: dict[str, Any]) -> bool:
        """Record one contribution; returns whether the pair was new."""
        raise NotImplementedError

    def support(self, token: str) -> int:
        """Distinct devices supporting ``token``."""
        raise NotImplementedError

    def tokens(self) -> list[str]:
        """All known tokens, sorted."""
        raise NotImplementedError

    def exemplars(self, token: str) -> list[tuple[str, int, dict[str, Any]]]:
        """Retained ``(device_id, seq, packet record)`` exemplars, sorted."""
        raise NotImplementedError

    def device_supports(self, device_id: str, token: str) -> bool:
        """Whether this device already supports ``token``."""
        raise NotImplementedError

    def device_token_count(self, device_id: str) -> int:
        """Distinct tokens this device has contributed to."""
        raise NotImplementedError


class InMemorySupportStore(SupportStore):
    """Dict-backed support state.

    :param exemplars_per_token: packet exemplars retained per token; the
        smallest ``(device_id, seq)`` pairs win, so retention is
        independent of arrival order.
    """

    def __init__(self, exemplars_per_token: int = 8) -> None:
        if exemplars_per_token < 1:
            raise FederationError("exemplars_per_token must be >= 1")
        self.exemplars_per_token = exemplars_per_token
        self._tokens: dict[str, _TokenSupport] = {}
        self._device_tokens: dict[str, set[str]] = {}

    def add(self, token: str, device_id: str, seq: int, packet_record: dict[str, Any]) -> bool:
        entry = self._tokens.get(token)
        if entry is None:
            entry = _TokenSupport()
            self._tokens[token] = entry
        new_pair = device_id not in entry.devices
        entry.devices.add(device_id)
        self._device_tokens.setdefault(device_id, set()).add(token)
        if new_pair:
            entry.exemplars[device_id] = (seq, packet_record)
            if len(entry.exemplars) > self.exemplars_per_token:
                # Evict the largest (device_id, seq) so retention stays the
                # order-independent "smallest pairs" set.
                largest = max(entry.exemplars, key=lambda d: (d, entry.exemplars[d][0]))
                del entry.exemplars[largest]
        return new_pair

    def support(self, token: str) -> int:
        entry = self._tokens.get(token)
        return len(entry.devices) if entry else 0

    def tokens(self) -> list[str]:
        return sorted(self._tokens)

    def exemplars(self, token: str) -> list[tuple[str, int, dict[str, Any]]]:
        entry = self._tokens.get(token)
        if entry is None:
            return []
        return sorted(
            (device_id, seq, record) for device_id, (seq, record) in entry.exemplars.items()
        )

    def device_supports(self, device_id: str, token: str) -> bool:
        return token in self._device_tokens.get(device_id, ())

    def device_token_count(self, device_id: str) -> int:
        return len(self._device_tokens.get(device_id, ()))


class DirSupportStore(InMemorySupportStore):
    """Support state persisted as an append-only JSONL journal.

    Each *new* ``(token, device)`` pair appends one line to
    ``<root>/support.jsonl``; a fresh process replays the journal on
    construction and continues where the old one died.  Repeat
    contributions are not journaled — replaying the journal reconstructs
    exactly the support sets and exemplars.

    :param root: journal directory (created if missing).
    :param exemplars_per_token: as for :class:`InMemorySupportStore`.
    """

    def __init__(self, root: str | Path, exemplars_per_token: int = 8) -> None:
        super().__init__(exemplars_per_token=exemplars_per_token)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._journal_path = self.root / "support.jsonl"
        self._replay()

    def _replay(self) -> None:
        if not self._journal_path.exists():
            return
        for line in self._journal_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                super().add(entry["token"], entry["device_id"], entry["seq"], entry["packet"])
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise FederationError(f"corrupt support journal line: {line!r}") from exc

    def add(self, token: str, device_id: str, seq: int, packet_record: dict[str, Any]) -> bool:
        new_pair = super().add(token, device_id, seq, packet_record)
        if new_pair:
            line = json.dumps(
                {"token": token, "device_id": device_id, "seq": seq, "packet": packet_record},
                sort_keys=True,
            )
            with self._journal_path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        return new_pair


class FederatedAggregator:
    """Distinct-device support counting behind the contribution cap.

    :param store: support storage (default: a fresh in-memory store).
    :param contribution_cap: distinct tokens one device may introduce.
    :param obs: optional observability bundle (``fed_agg_*`` counters).
    """

    def __init__(
        self,
        store: SupportStore | None = None,
        *,
        contribution_cap: int = 64,
        obs: Observability | None = None,
    ) -> None:
        if contribution_cap < 1:
            raise FederationError("contribution_cap must be >= 1")
        self.store = store or InMemorySupportStore()
        self.contribution_cap = contribution_cap
        self.obs = obs or NULL_OBS
        self.counts: dict[str, int] = {outcome.value: 0 for outcome in AcceptOutcome}

    def accept(self, report: DeviceReport) -> AcceptOutcome:
        """Fold one validated, deduplicated report into the aggregate."""
        if self.store.device_supports(report.device_id, report.token):
            outcome = AcceptOutcome.REPEAT
        elif self.store.device_token_count(report.device_id) >= self.contribution_cap:
            outcome = AcceptOutcome.CAPPED
        else:
            self.store.add(report.token, report.device_id, report.seq, report.packet.to_dict())
            outcome = AcceptOutcome.COUNTED
        self.counts[outcome.value] += 1
        self.obs.inc(f"fed_agg_{outcome.value}")
        return outcome

    # -- the k-anonymity gate ------------------------------------------------------

    def support(self, token: str) -> int:
        return self.store.support(token)

    def n_tokens(self) -> int:
        return len(self.store.tokens())

    def admitted_tokens(self, min_support: int) -> list[str]:
        """Tokens seen on at least ``min_support`` distinct devices, sorted."""
        if min_support < 1:
            raise FederationError("min_support must be >= 1")
        return [
            token for token in self.store.tokens() if self.store.support(token) >= min_support
        ]

    def admitted_material(self, min_support: int) -> list[HttpPacket]:
        """The signature material the k-gate admits.

        Exemplars of every admitted token, ordered by
        ``(token, device_id, seq)`` and deduplicated by canonical wire
        content — a pure function of the accepted-contribution set,
        independent of arrival order.
        """
        material: list[HttpPacket] = []
        seen: set[bytes] = set()
        for token in self.admitted_tokens(min_support):
            for __, ___, record in self.store.exemplars(token):
                packet = HttpPacket.from_dict(record)
                key = packet.wire_bytes()
                if key in seen:
                    continue
                seen.add(key)
                material.append(packet)
        return material

    def stats(self) -> dict[str, Any]:
        """Aggregate snapshot for reports and tests."""
        tokens = self.store.tokens()
        supports = [self.store.support(token) for token in tokens]
        return {
            "tokens": len(tokens),
            "contributions": dict(sorted(self.counts.items())),
            "max_support": max(supports, default=0),
            "mean_support": round(sum(supports) / len(supports), 3) if supports else 0.0,
        }
