"""The device -> server report protocol: checksummed, versioned envelopes.

A fleet device that locally flags a packet as a candidate leak uploads a
*report*: the packet itself plus the **token** summarizing the leak shape
it observed.  The token is the aggregation key for k-anonymity: it names
*where and how* data flowed (method, destination, path, parameter names)
— never the parameter *values*, which are exactly the per-device material
(UDIDs, Android IDs) that must not be pooled raw across users.

On the wire a report travels as a JSON-able envelope mirroring the
signature-distribution format (:mod:`repro.signatures.store` format 2):

- ``format_version`` — protocol version, rejected on skew;
- ``device_id`` / ``seq`` — the reporter and its per-device monotonic
  sequence number (1-based), the replay-defense handle;
- ``token`` — the aggregation key;
- ``packet`` — the serialized :class:`~repro.http.packet.HttpPacket`;
- ``checksum`` — hex SHA-256 over the canonical serialization of all
  other fields, so truncation and bit corruption are detected without
  trusting the transport.

Every validation failure raises
:class:`~repro.errors.ReportValidationError` with a machine-readable
``reason`` (``schema`` / ``version`` / ``checksum``) — ingest counts them
per cause and never lets one bad envelope abort a batch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ParseError, ReportValidationError
from repro.http.packet import HttpPacket

#: Current report envelope protocol version.
REPORT_FORMAT_VERSION = 1


def token_for(packet: HttpPacket) -> str:
    """The aggregation token: the leak *shape*, never the leaked values.

    ``METHOD host:port/path?name&name|name&name`` — query parameter names
    before the bar, body (form) parameter names after, each sorted.  Two
    devices leaking *different* identifier values through the same app
    endpoint produce the same token (so honest support accumulates), while
    a fabricated observation no other device saw stays unique to its
    fabricator (so min-support kills it).
    """
    request = packet.request
    query_names = ",".join(sorted(request.query.keys()))
    form_names = ",".join(sorted(request.form().keys()))
    return (
        f"{request.method} {packet.host}:{packet.port}"
        f"{request.path}?{query_names}|{form_names}"
    )


@dataclass(frozen=True, slots=True)
class DeviceReport:
    """One validated candidate-leak observation.

    :param device_id: the reporting device.
    :param seq: per-device monotonic sequence number (1-based).
    :param token: the leak-shape aggregation key (see :func:`token_for`).
    :param packet: the observed packet (signature material once the
        token passes the min-support gate).
    """

    device_id: str
    seq: int
    token: str
    packet: HttpPacket


def _payload_checksum(record: dict[str, Any]) -> str:
    """SHA-256 over the canonical serialization of the non-checksum fields."""
    material = {key: value for key, value in record.items() if key != "checksum"}
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_report(report: DeviceReport) -> dict[str, Any]:
    """Serialize one report to its checksummed wire envelope."""
    record: dict[str, Any] = {
        "format_version": REPORT_FORMAT_VERSION,
        "device_id": report.device_id,
        "seq": report.seq,
        "token": report.token,
        "packet": report.packet.to_dict(),
    }
    record["checksum"] = _payload_checksum(record)
    return record


def decode_report(record: Any) -> DeviceReport:
    """Validate one wire envelope back into a :class:`DeviceReport`.

    :raises ReportValidationError: with ``reason`` ``"schema"`` for a
        missing/mistyped field or unparseable packet, ``"version"`` for
        protocol skew, and ``"checksum"`` for payload corruption.
    """
    if not isinstance(record, dict):
        raise ReportValidationError(
            f"report envelope must be a mapping, got {type(record).__name__}"
        )
    version = record.get("format_version")
    if version != REPORT_FORMAT_VERSION:
        raise ReportValidationError(
            f"unsupported report format version {version!r}", reason="version"
        )
    device_id = record.get("device_id")
    if not isinstance(device_id, str) or not device_id:
        raise ReportValidationError(f"bad device_id {device_id!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise ReportValidationError(f"bad seq {seq!r} (need int >= 1)")
    token = record.get("token")
    if not isinstance(token, str) or not token:
        raise ReportValidationError(f"bad token {token!r}")
    packet_record = record.get("packet")
    if not isinstance(packet_record, dict):
        raise ReportValidationError("missing or mistyped packet record")
    checksum = record.get("checksum")
    if not isinstance(checksum, str):
        raise ReportValidationError("missing checksum", reason="checksum")
    if checksum != _payload_checksum(record):
        raise ReportValidationError(
            f"checksum mismatch for {device_id}#{seq}", reason="checksum"
        )
    try:
        packet = HttpPacket.from_dict(packet_record)
    except (ParseError, KeyError, TypeError, ValueError) as exc:
        raise ReportValidationError(f"unparseable packet payload: {exc}") from exc
    return DeviceReport(device_id=device_id, seq=seq, token=token, packet=packet)
