"""``repro.federation`` — byzantine-tolerant crowdsourced fleet aggregation.

The paper's server collects traffic from one lab device; the production
shape (PrivacyProxy, arXiv:1708.06384) is a *fleet*: many devices report
candidate-leak observations and the server aggregates across users before
signature generation.  This package is the layer between device reports
and the signature pipeline, built to survive a fleet full of crashed,
buggy, replaying, and outright adversarial reporters:

- :mod:`repro.federation.report` — versioned, SHA-256-checksummed report
  envelopes with per-device monotonic sequence numbers;
- :mod:`repro.federation.faults` — :class:`DeviceFaultPlan`, a seeded
  injector of the fleet fault taxonomy (malform / duplicate / replay /
  poison / flood);
- :mod:`repro.federation.ingest` — :class:`FleetIngest`, sharded
  validating admission with a per-device dedup window, replay defense,
  DROP/DEGRADE shedding, and circuit-breaker quarantine with cooldown
  release;
- :mod:`repro.federation.aggregate` — :class:`FederatedAggregator` over a
  pluggable :class:`SupportStore` (in-memory or dir-backed): per-token
  distinct-device support, per-device contribution caps, and the
  k-anonymity min-support gate;
- :mod:`repro.federation.fleet` — the round orchestrator: per-device
  report substreams -> faulty transport -> ingest -> aggregation ->
  signature generation;
- :mod:`repro.federation.bench` — the fleet-scale bench behind
  ``repro federate`` (``BENCH_federation.json``).

The headline guarantee, enforced by ``repro chaos --target federation``:
at device-fault rates 0-50 %, the federated signature set is
**byte-identical** to the fault-free same-seed baseline — validation,
dedup, quarantine, and the min-support gate absorb every injected fault
class bit-for-bit.
"""

from repro.federation.aggregate import (
    AcceptOutcome,
    DirSupportStore,
    FederatedAggregator,
    InMemorySupportStore,
    SupportStore,
)
from repro.federation.faults import DeviceFaultKind, DeviceFaultPlan
from repro.federation.fleet import FederationResult, run_federation
from repro.federation.ingest import FleetIngest, IngestConfig, ReportStatus
from repro.federation.report import (
    REPORT_FORMAT_VERSION,
    DeviceReport,
    decode_report,
    encode_report,
    token_for,
)

__all__ = [
    "REPORT_FORMAT_VERSION",
    "AcceptOutcome",
    "DeviceFaultKind",
    "DeviceFaultPlan",
    "DeviceReport",
    "DirSupportStore",
    "FederatedAggregator",
    "FederationResult",
    "FleetIngest",
    "InMemorySupportStore",
    "IngestConfig",
    "ReportStatus",
    "SupportStore",
    "decode_report",
    "encode_report",
    "run_federation",
    "token_for",
]
