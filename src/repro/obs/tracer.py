"""Hierarchical deterministic tracing on a logical-tick clock.

A :class:`Tracer` records nested :class:`Span`\\ s.  Time is a **logical
tick counter** owned by the tracer: opening or closing a span advances it
by one, and instrumented code calls :meth:`Tracer.advance` with the number
of work units it just processed (packets ingested, pairs computed, merges
performed).  Durations therefore measure *work*, not wall clock, and two
runs with the same seed and configuration produce byte-identical traces.

Wall-clock capture is **optional and off by default** — tests and the
determinism contract run without it; benches turn it on to attribute real
seconds per stage.  When enabled, each span additionally records
``wall_s``; exports containing wall times are, of course, not byte-stable.

The run id is seeded and deterministic: :func:`deterministic_run_id`
hashes the seed together with a JSON rendering of the run configuration,
so the same experiment always produces the same id and two different
configurations never collide silently.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


def deterministic_run_id(seed: int, config: Any = None) -> str:
    """A 16-hex-digit run id derived from ``seed`` and a config value.

    :param seed: the experiment seed.
    :param config: any JSON-serializable description of the run
        configuration (non-serializable leaves are stringified).
    """
    material = json.dumps({"seed": seed, "config": config}, sort_keys=True, default=str)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(slots=True)
class Span:
    """One traced interval.

    :param span_id: 1-based id in span-start order (deterministic).
    :param parent_id: enclosing span's id, ``None`` for roots.
    :param track: display lane (maps to a ``tid`` in the Chrome export);
        inherited from the parent when not given explicitly.
    :param start_tick: logical tick at open.
    :param end_tick: logical tick at close (``None`` while open).
    :param attrs: caller-supplied labels, exported under ``args``.
    :param wall_s: wall-clock duration, only when the tracer captures it.
    """

    span_id: int
    parent_id: int | None
    name: str
    track: str
    start_tick: int
    attrs: dict[str, Any] = field(default_factory=dict)
    end_tick: int | None = None
    wall_s: float | None = None

    @property
    def closed(self) -> bool:
        return self.end_tick is not None

    @property
    def duration_ticks(self) -> int:
        """Logical duration; ``0`` while the span is still open."""
        return (self.end_tick - self.start_tick) if self.end_tick is not None else 0


class Tracer:
    """Builds a deterministic span tree over a logical-tick clock.

    :param run_id: identifier stamped on every export (use
        :func:`deterministic_run_id` for the seeded form).
    :param wall_clock: capture real elapsed seconds per span.  Off by
        default so traces stay byte-identical across same-seed runs.
    """

    def __init__(self, run_id: str = "run", wall_clock: bool = False) -> None:
        self.run_id = run_id
        self.wall_clock = wall_clock
        self.spans: list[Span] = []
        self.tick = 0
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording ----------------------------------------------------------------

    def advance(self, ticks: int = 1) -> None:
        """Advance the logical clock by ``ticks`` work units.

        :raises ValueError: for a negative advance (time never rewinds).
        """
        ticks = int(ticks)
        if ticks < 0:
            raise ValueError(f"logical time is monotonic; cannot advance by {ticks}")
        self.tick += ticks

    @contextmanager
    def span(self, name: str, track: str | None = None, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost active span.

        Opening and closing each consume one tick, so even a span that
        does no explicit :meth:`advance` has nonzero duration and every
        parent has nonzero self-time.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            track=track or (parent.track if parent is not None else "main"),
            start_tick=self.tick,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.tick += 1
        self.spans.append(span)
        self._stack.append(span)
        wall_started = time.perf_counter() if self.wall_clock else None
        try:
            yield span
        finally:
            self._stack.pop()
            self.tick += 1
            span.end_tick = self.tick
            if wall_started is not None:
                span.wall_s = time.perf_counter() - wall_started

    # -- reading ------------------------------------------------------------------

    @property
    def closed_spans(self) -> list[Span]:
        """Every finished span, in deterministic span-start order."""
        return [span for span in self.spans if span.closed]

    def spans_named(self, name: str) -> list[Span]:
        """All closed spans with one name, in start order."""
        return [span for span in self.closed_spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self.spans if s.parent_id == span.span_id]
