"""The metrics registry: counters, gauges, fixed-bound histograms.

One :class:`Metrics` instance is a process-local registry shared by every
instrumented subsystem (pipeline, distance engine, distribution channel,
serving gateway).  Three primitive families:

- monotonic **counters** (:meth:`Metrics.inc`) — totals that only grow;
- **gauges** (:meth:`Metrics.set_gauge`) — last-write-wins levels
  (quarantine depth, live signature version);
- **histograms** (:meth:`Metrics.observe`) — fixed bucket bounds with the
  deterministic max-clamped percentile estimator proven in the serving
  telemetry: the reported quantile is the upper edge of the bucket the
  quantile falls in, clamped to the exact observed maximum.

Everything snapshots with **sorted keys** and defined empty-case values,
so two same-seed runs export byte-identical artifacts and exports diff
cleanly across commits.  :meth:`Metrics.to_prometheus` renders the whole
registry in the Prometheus text exposition format.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

#: Default bucket upper edges for histograms registered without explicit
#: bounds (a generic 1-2-5 ladder; last bucket is +inf).
DEFAULT_BOUNDS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
)

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


@dataclass
class Histogram:
    """A fixed-bound bucketed histogram with deterministic percentiles.

    :param bounds: ascending bucket upper edges; an implicit overflow
        bucket catches everything above the last edge.
    """

    bounds: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min_value: float = 0.0
    max_value: float = 0.0

    def __post_init__(self) -> None:
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be ascending, got {self.bounds!r}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self.count == 0:
            self.min_value = self.max_value = value
        else:
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Deterministic upper-bound estimate of the ``p`` quantile.

        Returns the upper edge of the bucket the quantile lands in,
        clamped to the exact observed maximum (so a sparse top bucket
        never reports beyond what was seen).  The empty-histogram value
        is **defined** as ``0.0`` — exports never carry NaN.

        :param p: quantile in ``[0, 1]``.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {p}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(p * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index == len(self.bounds):
                    return self.max_value
                return min(float(self.bounds[index]), self.max_value)
        return self.max_value

    def to_dict(self) -> dict[str, Any]:
        """JSON form.  Empty histograms report all-zero moments, never NaN."""
        return {
            "count": self.count,
            "mean": round(self.mean, 4),
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": {
                **{str(bound): n for bound, n in zip(self.bounds, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class Metrics:
    """A registry of named counters, gauges, and histograms.

    All mutating methods are cheap enough for hot paths; all read methods
    produce deterministic, key-sorted output.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- writers ------------------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        """Bump a monotonic counter.

        :raises ValueError: for a negative increment (counters only grow).
        """
        if by < 0:
            raise ValueError(f"counters are monotonic; cannot add {by}")
        self.counters[name] = self.counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins level."""
        self.gauges[name] = value

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None) -> Histogram:
        """Fetch (registering on first use) the named histogram.

        :param bounds: bucket edges used only when the histogram does not
            exist yet; an existing registration keeps its bounds.
        """
        found = self.histograms.get(name)
        if found is None:
            found = self.histograms[name] = Histogram(bounds or DEFAULT_BOUNDS)
        return found

    def observe(self, name: str, value: float, bounds: tuple[float, ...] | None = None) -> None:
        """Record one observation in the named histogram."""
        self.histogram(name, bounds).observe(value)

    # -- readers ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable, key-sorted summary of the whole registry."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: h.to_dict() for name, h in sorted(self.histograms.items())},
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render the registry in the Prometheus text exposition format.

        Families are emitted in sorted-name order; histogram buckets carry
        cumulative counts (as the format requires) ending in ``le="+Inf"``.
        Byte-identical across runs with identical registry contents.
        """
        lines: list[str] = []
        for name in sorted(self.counters):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self.counters[name]}")
        for name in sorted(self.gauges):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(self.gauges[name])}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def _prom_name(prefix: str, name: str) -> str:
    """A valid Prometheus metric name from a registry key."""
    return _PROM_NAME.sub("_", f"{prefix}_{name}")


def _prom_value(value: float) -> str:
    """Canonical number formatting: integral floats print without ``.0``."""
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)
