"""Seeded observed scenarios behind ``repro trace`` and ``repro metrics``.

Each scenario builds a synthetic corpus, runs a fully instrumented
workload — the offline detection pipeline for :func:`run_traced_pipeline`,
a distribution + serving round-trip for :func:`run_traced_serving` — and
writes the standard artifact set into one directory:

- ``spans.jsonl`` — the span tree, one JSON object per line;
- ``trace.json`` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or https://ui.perfetto.dev);
- ``metrics.prom`` — the metrics registry, Prometheus text exposition;
- ``stages.json`` — the :class:`~repro.obs.profile.StageProfile` rollup
  (pipeline scenario only).

Determinism is the contract: the tracer's wall clock stays off, so two
runs with the same arguments produce **byte-identical** files — CI's
``trace-smoke`` job asserts exactly that with ``diff -r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs import Observability, export_chrome_trace, export_metrics_text, export_spans_jsonl
from repro.obs.profile import StageProfile


@dataclass(slots=True)
class ScenarioArtifacts:
    """What one observed scenario wrote, plus in-memory views for callers."""

    out_dir: Path
    paths: dict[str, Path]
    obs: Observability
    profile: StageProfile | None
    summary: dict[str, Any]


def run_traced_pipeline(
    *,
    n_apps: int = 60,
    sample: int = 40,
    seed: int = 0,
    workers: int = 1,
    out_dir: str | Path,
) -> ScenarioArtifacts:
    """Run one instrumented :class:`DetectionPipeline` pass and export.

    The pipeline result is bit-identical to an uninstrumented run with
    the same arguments (asserted by ``tests/test_obs_equivalence.py``);
    observation only *adds* the artifact files.
    """
    from repro.core.pipeline import DetectionPipeline, PipelineConfig
    from repro.simulation.corpus import build_corpus

    config = {
        "scenario": "pipeline",
        "n_apps": n_apps,
        "sample": sample,
        "workers": workers,
    }
    obs = Observability.create(seed=seed, config=config)
    corpus = build_corpus(n_apps=n_apps, seed=seed)
    pipeline = DetectionPipeline(
        corpus.trace,
        corpus.payload_check(),
        PipelineConfig(workers=workers),
        obs=obs,
    )
    result = pipeline.run(sample, seed=seed)

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    profile = obs.profile()
    paths = {
        "spans": export_spans_jsonl(obs.tracer, out_dir / "spans.jsonl"),
        "chrome": export_chrome_trace(obs.tracer, out_dir / "trace.json"),
        "metrics": export_metrics_text(obs.metrics, out_dir / "metrics.prom"),
    }
    stages_path = out_dir / "stages.json"
    stages_path.write_text(_stages_json(profile), encoding="utf-8")
    paths["stages"] = stages_path
    summary = {
        "run_id": obs.tracer.run_id,
        "n_apps": n_apps,
        "sample": result.n_sample,
        "seed": seed,
        "workers": workers,
        "n_signatures": len(result.signatures),
        "tp_percent": result.metrics.tp_percent,
        "fp_percent": result.metrics.fp_percent,
        "total_ticks": obs.tracer.tick,
        "n_spans": len(obs.tracer.closed_spans),
    }
    return ScenarioArtifacts(
        out_dir=out_dir, paths=paths, obs=obs, profile=profile, summary=summary
    )


def run_traced_serving(
    *,
    n_apps: int = 60,
    events: int = 1200,
    sample: int = 40,
    seed: int = 0,
    out_dir: str | Path,
) -> ScenarioArtifacts:
    """Run one instrumented serving round-trip and export its metrics.

    The scenario exercises every counter family sharing one registry:
    the server generates two signature versions, a
    :class:`~repro.core.distribution.SignatureChannel` publishes them, a
    :class:`~repro.core.distribution.SignatureFetcher` installs the set
    into a :class:`~repro.core.flowcontrol.FlowControlApp` (screening a
    slice of the corpus), a
    :class:`~repro.serving.gateway.ScreeningGateway` serves the full
    event stream with a mid-stream hot reload, and a
    :class:`~repro.service.server.SignatureService` runs one in-process
    endpoint episode (fetch / publish / screen / health) so the
    ``service_*`` counters and the ``service_request_ms`` histogram land
    in the same export.  The service episode feeds
    :meth:`~repro.service.server.SignatureService.observe_request` with
    synthetic latencies derived from the call index — no wall clock —
    so the artifact files stay byte-identical across runs.
    """
    from repro.core.distribution import SignatureChannel, SignatureFetcher
    from repro.core.flowcontrol import FlowControlApp
    from repro.core.server import SignatureServer
    from repro.serving.gateway import GatewayConfig, ReloadEvent, ScreeningGateway
    from repro.serving.loadgen import FleetLoadGenerator, LoadProfile
    from repro.serving.telemetry import ServingTelemetry
    from repro.simulation.corpus import build_corpus

    config = {
        "scenario": "serving",
        "n_apps": n_apps,
        "events": events,
        "sample": sample,
    }
    obs = Observability.create(seed=seed, config=config)
    metrics = obs.metrics
    corpus = build_corpus(n_apps=n_apps, seed=seed)
    server = SignatureServer(corpus.payload_check(), obs=obs)
    server.ingest(corpus.trace)
    v1 = server.generate(sample, seed=seed).signatures
    v2 = server.generate(sample, seed=seed + 1).signatures

    channel = SignatureChannel(metrics=metrics)
    env1 = channel.publish(v1)
    env2 = channel.publish(v2)

    fetcher = SignatureFetcher(channel, seed=seed, metrics=metrics)
    app = FlowControlApp.degraded(metrics=metrics)
    fetcher.fetch_into(app)
    for packet in corpus.trace.packets[: min(200, len(corpus.trace))]:
        app.screen(packet)

    gateway_config = GatewayConfig()
    telemetry = ServingTelemetry(metrics=metrics)
    gateway = ScreeningGateway(
        list(env1.signatures),
        config=gateway_config,
        telemetry=telemetry,
        set_version=env1.set_version,
    )
    generator = FleetLoadGenerator(corpus, LoadProfile(), seed=seed)
    stream = generator.events(events)
    midpoint = stream[len(stream) // 2].tick if stream else 0.0
    results = gateway.run(stream, reloads=[ReloadEvent(tick=midpoint, envelope=env2)])

    service_summary = _service_episode(
        metrics, corpus, v1=v1, v2=v2, events=events, seed=seed
    )

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "metrics": export_metrics_text(metrics, out_dir / "metrics.prom"),
        "serving_spans": telemetry.export_jsonl(out_dir / "serving_spans.jsonl"),
        "spans": export_spans_jsonl(obs.tracer, out_dir / "spans.jsonl"),
    }
    summary = {
        "run_id": obs.tracer.run_id,
        "n_apps": n_apps,
        "events": len(results),
        "sample": sample,
        "seed": seed,
        "n_signatures": {"boot": len(v1), "reload": len(v2)},
        "screened": sum(1 for r in results if r.screened),
        "shed": sum(1 for r in results if not r.screened),
        "final_generation": gateway.generation,
        "final_version": gateway.set_version,
        "service": service_summary,
        "counters": dict(sorted(metrics.counters.items())),
    }
    return ScenarioArtifacts(
        out_dir=out_dir, paths=paths, obs=obs, profile=None, summary=summary
    )


def _service_episode(
    metrics: Any, corpus: Any, *, v1: list, v2: list, events: int, seed: int
) -> dict[str, Any]:
    """One in-process :class:`SignatureService` endpoint episode.

    Drives the HTTP-free endpoint methods directly against a service
    sharing the scenario's metrics registry, and accounts each call via
    :meth:`~repro.service.server.SignatureService.observe_request` with
    a synthetic latency (``2.0 + 1.5 * index`` ms) so the registry gains
    ``service_request_ms`` observations without any wall-clock reads.
    """
    from repro.service.server import ServiceConfig, SignatureService
    from repro.service.wire import encode_event
    from repro.serving.loadgen import FleetLoadGenerator, LoadProfile
    from repro.signatures.store import SignatureStore

    service = SignatureService(
        list(v1), config=ServiceConfig(seed=seed), metrics=metrics
    )
    service_events = [
        encode_event(event)
        for event in FleetLoadGenerator(corpus, LoadProfile(), seed=seed + 1).events(
            max(1, min(events // 4, 200))
        )
    ]
    calls: list[tuple[str, int]] = []

    status, _document, version = service.fetch()
    calls.append(("fetch", status))
    status, _body = service.publish(SignatureStore.dumps_envelope(list(v2), version + 1))
    calls.append(("publish", status))
    status, screen_body = service.screen({"events": service_events})
    calls.append(("screen", status))
    status, _body, _version = service.fetch(since=version + 1)
    calls.append(("fetch", status))
    for index, (route, status) in enumerate(calls):
        # Mirror the HTTP handler's accounting (route counter + request
        # observation) so the merged export reads the same either way.
        metrics.inc(f"service_requests_{route}")
        metrics.inc(f"service_responses_{status}")
        service.observe_request(route, status, 2.0 + 1.5 * index)
    status, health_body = service.health()
    calls.append(("health", status))
    metrics.inc("service_requests_health")
    metrics.inc(f"service_responses_{status}")
    service.observe_request("health", status, 2.0 + 1.5 * (len(calls) - 1))

    screened = sum(
        1 for result in screen_body.get("results", []) if result.get("screened")
    )
    return {
        "run_id": service.run_id,
        "requests": [{"route": route, "status": status} for route, status in calls],
        "events": len(service_events),
        "screened": screened,
        "shed": len(service_events) - screened,
        "uptime_ticks": health_body["service"]["uptime_ticks"]
        if isinstance(health_body.get("service"), dict)
        else 0,
    }


def _stages_json(profile: StageProfile) -> str:
    import json

    return json.dumps(profile.to_dict(), indent=2, sort_keys=True) + "\n"
