"""Service-level objectives with error budgets and burn-rate alerts.

An :class:`SloObjective` reduces every question — availability, tail
latency, shed rate — to the same shape: over a stream of events, the
fraction judged *good* must stay at or above ``target``.  That
uniformity buys one error-budget ledger and one alerting rule for all of
them:

- **error budget** — with target ``t`` over ``N`` events, up to
  ``(1 - t) * N`` bad events are tolerable; the budget *consumed* is the
  observed bad count divided by that allowance (>1 means the objective
  is blown).
- **burn rate** — ``bad_fraction / (1 - t)`` over a sliding window: the
  speed at which the budget is being spent (1.0 = exactly on budget).
- **multi-window alerts** — the Google SRE workbook construction: a
  :class:`BurnRule` fires only when the burn rate exceeds its threshold
  over *both* a long window (sustained damage) and a short window (still
  happening now), which suppresses both one-off blips and stale pages.

Windows are event-counted, never wall-clock, so the engine is a pure
function of the recorded sequence — replaying the same requests yields
byte-identical reports.  The engine is lock-protected so concurrent
load-generator threads can record into it live.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Iterable


class AlertSeverity(str, Enum):
    """How urgently a burn alert should be treated."""

    PAGE = "page"
    TICKET = "ticket"


@dataclass(frozen=True, slots=True)
class BurnRule:
    """One multi-window burn-rate alerting rule.

    :param burn_threshold: minimum burn rate (budget multiples) that must
        hold over **both** windows for the alert to fire.
    :param long_window: event count establishing sustained damage; the
        rule stays silent until this window has filled once.
    :param short_window: event count confirming the burn is current.
    """

    severity: AlertSeverity
    burn_threshold: float
    long_window: int
    short_window: int

    def __post_init__(self) -> None:
        if self.burn_threshold <= 0:
            raise ValueError(f"burn_threshold must be positive, got {self.burn_threshold}")
        if self.short_window <= 0 or self.long_window <= self.short_window:
            raise ValueError(
                f"need 0 < short_window < long_window, got "
                f"{self.short_window} / {self.long_window}"
            )


#: The classic fast-burn page + slow-burn ticket pair (SRE workbook ch.5),
#: sized in events rather than hours.
DEFAULT_BURN_RULES = (
    BurnRule(AlertSeverity.PAGE, burn_threshold=14.4, long_window=1024, short_window=128),
    BurnRule(AlertSeverity.TICKET, burn_threshold=6.0, long_window=4096, short_window=512),
)

#: Shedding budgets are loose (25%), so budget-multiple thresholds must be
#: small: paging needs >80% of traffic shed, sustained.
SHED_BURN_RULES = (
    BurnRule(AlertSeverity.PAGE, burn_threshold=3.2, long_window=2048, short_window=256),
    BurnRule(AlertSeverity.TICKET, burn_threshold=2.0, long_window=4096, short_window=512),
)

_KINDS = ("availability", "latency", "shed_rate")


@dataclass(frozen=True, slots=True)
class SloObjective:
    """One objective: the good fraction of events must reach ``target``.

    :param kind: picks the good-event predicate — ``availability``
        (status < 500), ``latency`` (duration ≤ ``threshold_ms``; a 0.99
        target is exactly "p99 under threshold"), or ``shed_rate`` (a
        screening decision that was not shed).
    :param target: required good fraction, strictly inside (0, 1) so the
        error budget is always a positive allowance.
    :param threshold_ms: latency cutoff, required iff ``kind="latency"``.
    :param rules: burn-rate alerting rules (defaults per kind).
    """

    name: str
    kind: str
    target: float
    threshold_ms: float | None = None
    rules: tuple[BurnRule, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; expected one of {_KINDS}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if (self.kind == "latency") != (self.threshold_ms is not None):
            raise ValueError("threshold_ms is required for latency objectives and only them")
        if self.threshold_ms is not None and self.threshold_ms <= 0:
            raise ValueError(f"threshold_ms must be positive, got {self.threshold_ms}")

    @property
    def burn_rules(self) -> tuple[BurnRule, ...]:
        if self.rules is not None:
            return self.rules
        return SHED_BURN_RULES if self.kind == "shed_rate" else DEFAULT_BURN_RULES


#: The service's objectives: three nines of availability, p99 wall-ms
#: under 2 s (generous against the committed bench's ~0.4 s so CI runners
#: have headroom), and at least 75% of screening decisions admitted —
#: the same 25% allowance the load harness budget enforces.
DEFAULT_SERVICE_OBJECTIVES = (
    SloObjective("availability", kind="availability", target=0.999),
    SloObjective("latency_p99", kind="latency", target=0.99, threshold_ms=2000.0),
    SloObjective("shed_rate", kind="shed_rate", target=0.75),
)


class _SlidingWindow:
    """Bad-event counter over the last ``size`` events."""

    __slots__ = ("size", "_ring", "bad")

    def __init__(self, size: int) -> None:
        self.size = size
        self._ring: deque[bool] = deque(maxlen=size)
        self.bad = 0

    def push(self, good: bool) -> None:
        if len(self._ring) == self.size and not self._ring[0]:
            self.bad -= 1
        self._ring.append(good)
        if not good:
            self.bad += 1

    @property
    def filled(self) -> bool:
        return len(self._ring) == self.size

    @property
    def bad_fraction(self) -> float:
        return self.bad / len(self._ring) if self._ring else 0.0


class ObjectiveTracker:
    """Counts, windows, and alert state for one objective."""

    def __init__(self, objective: SloObjective) -> None:
        self.objective = objective
        self.good = 0
        self.total = 0
        self.alerts: list[dict[str, Any]] = []
        self._windows = {
            size: _SlidingWindow(size)
            for rule in objective.burn_rules
            for size in (rule.long_window, rule.short_window)
        }
        self._active: set[BurnRule] = set()

    def record(self, good: bool) -> None:
        self.total += 1
        if good:
            self.good += 1
        for window in self._windows.values():
            window.push(good)
        budget_fraction = 1.0 - self.objective.target
        for rule in self.objective.burn_rules:
            long_w = self._windows[rule.long_window]
            if not long_w.filled:
                continue
            burn_long = long_w.bad_fraction / budget_fraction
            burn_short = self._windows[rule.short_window].bad_fraction / budget_fraction
            firing = burn_long >= rule.burn_threshold and burn_short >= rule.burn_threshold
            if firing and rule not in self._active:
                self._active.add(rule)
                self.alerts.append(
                    {
                        "severity": rule.severity.value,
                        "burn_threshold": rule.burn_threshold,
                        "burn_long": round(burn_long, 4),
                        "burn_short": round(burn_short, 4),
                        "long_window": rule.long_window,
                        "short_window": rule.short_window,
                        "at_event": self.total,
                    }
                )
            elif not firing:
                self._active.discard(rule)

    @property
    def bad(self) -> int:
        return self.total - self.good

    def snapshot(self) -> dict[str, Any]:
        """The objective's report section (JSON-ready, deterministic)."""
        obj = self.objective
        compliance = self.good / self.total if self.total else 1.0
        allowed_bad = (1.0 - obj.target) * self.total
        consumed = self.bad / allowed_bad if allowed_bad > 0 else 0.0
        pages = sum(1 for a in self.alerts if a["severity"] == AlertSeverity.PAGE.value)
        section: dict[str, Any] = {
            "kind": obj.kind,
            "target": obj.target,
            "good": self.good,
            "total": self.total,
            "bad": self.bad,
            "compliance": round(compliance, 6),
            "budget": {
                "allowed_bad": round(allowed_bad, 3),
                "bad": self.bad,
                "consumed": round(consumed, 4),
                "remaining": round(1.0 - consumed, 4),
            },
            "alerts": list(self.alerts),
            "ok": compliance >= obj.target and pages == 0,
        }
        if obj.threshold_ms is not None:
            section["threshold_ms"] = obj.threshold_ms
        return section


class SloEngine:
    """Live SLO evaluation over a stream of request/decision events.

    Thread-safe so load-generator workers record concurrently; the report
    is a pure function of the recorded event sequence (no wall clock).
    """

    def __init__(self, objectives: Iterable[SloObjective] = DEFAULT_SERVICE_OBJECTIVES) -> None:
        self._trackers: dict[str, ObjectiveTracker] = {}
        for objective in objectives:
            if objective.name in self._trackers:
                raise ValueError(f"duplicate objective name {objective.name!r}")
            self._trackers[objective.name] = ObjectiveTracker(objective)
        self._lock = threading.Lock()

    def record_request(self, *, status: int, ms: float) -> None:
        """Feed one served request to the availability/latency objectives."""
        with self._lock:
            for tracker in self._trackers.values():
                kind = tracker.objective.kind
                if kind == "availability":
                    tracker.record(status < 500)
                elif kind == "latency":
                    tracker.record(ms <= tracker.objective.threshold_ms)

    def record_decision(self, *, shed: bool) -> None:
        """Feed one screening decision to the shed-rate objectives."""
        with self._lock:
            for tracker in self._trackers.values():
                if tracker.objective.kind == "shed_rate":
                    tracker.record(not shed)

    def report(self) -> dict[str, Any]:
        """The full SLO report: per-objective sections plus the verdict.

        ``ok`` is the CI gate: every objective within budget and zero
        page-severity burn alerts across all of them.
        """
        with self._lock:
            objectives = {name: t.snapshot() for name, t in self._trackers.items()}
        pages = sum(
            1
            for section in objectives.values()
            for alert in section["alerts"]
            if alert["severity"] == AlertSeverity.PAGE.value
        )
        tickets = sum(
            1
            for section in objectives.values()
            for alert in section["alerts"]
            if alert["severity"] == AlertSeverity.TICKET.value
        )
        return {
            "objectives": objectives,
            "page_alerts": pages,
            "ticket_alerts": tickets,
            "ok": pages == 0 and all(s["ok"] for s in objectives.values()),
        }


def replay_access_log(
    path: str | Path, objectives: Iterable[SloObjective] = DEFAULT_SERVICE_OBJECTIVES
) -> SloEngine:
    """Rebuild an :class:`SloEngine` from a service access log.

    Access-log lines carry request-level facts only, so this drives the
    availability and latency objectives; shed-rate objectives stay empty
    (vacuously compliant) because per-decision outcomes live in screen
    response bodies, not the access log.
    """
    engine = SloEngine(objectives)
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("kind") != "access":
            continue
        engine.record_request(status=int(record["status"]), ms=float(record["ms"]))
    return engine
