"""``repro.obs`` — the shared observability core (DESIGN.md §7).

One :class:`Observability` bundle carries a :class:`~repro.obs.tracer.Tracer`
(hierarchical spans on a logical-tick clock) and a
:class:`~repro.obs.metrics.Metrics` registry (counters, gauges,
histograms).  Instrumented subsystems accept an optional bundle and fall
back to :data:`NULL_OBS`, whose every operation is a no-op — so the
uninstrumented path stays allocation-free and, by construction, produces
bit-identical results.

The determinism contract: with the wall clock off (the default), every
artifact exported from an observed run — span JSONL, Chrome trace JSON,
Prometheus text — is a pure function of the seed and configuration.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.context import (
    NULL_FLIGHT_RECORDER,
    NULL_REQUEST_TRACER,
    FlightRecorder,
    RequestSpan,
    RequestTracer,
    TraceContext,
    audit_trace_join,
    export_joined_chrome_trace,
    export_request_spans_jsonl,
    join_chrome_trace,
    load_request_spans,
    parse_traceparent,
)
from repro.obs.export import (
    export_chrome_trace,
    export_metrics_text,
    export_spans_jsonl,
)
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, Metrics
from repro.obs.profile import StageProfile, StageStats
from repro.obs.slo import (
    DEFAULT_SERVICE_OBJECTIVES,
    AlertSeverity,
    BurnRule,
    SloEngine,
    SloObjective,
    replay_access_log,
)
from repro.obs.tracer import Span, Tracer, deterministic_run_id

__all__ = [
    "AlertSeverity",
    "BurnRule",
    "DEFAULT_BOUNDS",
    "DEFAULT_SERVICE_OBJECTIVES",
    "FlightRecorder",
    "Histogram",
    "Metrics",
    "NULL_FLIGHT_RECORDER",
    "NULL_OBS",
    "NULL_REQUEST_TRACER",
    "Observability",
    "RequestSpan",
    "RequestTracer",
    "SloEngine",
    "SloObjective",
    "Span",
    "StageProfile",
    "StageStats",
    "TraceContext",
    "Tracer",
    "audit_trace_join",
    "deterministic_run_id",
    "export_chrome_trace",
    "export_joined_chrome_trace",
    "export_metrics_text",
    "export_request_spans_jsonl",
    "export_spans_jsonl",
    "join_chrome_trace",
    "load_request_spans",
    "parse_traceparent",
]


class Observability:
    """A tracer and a metrics registry travelling together.

    :param tracer: span sink (a fresh one is created if omitted).
    :param metrics: metrics registry (a fresh one is created if omitted).
    """

    enabled: bool = True

    def __init__(self, tracer: Tracer | None = None, metrics: Metrics | None = None) -> None:
        self.tracer = tracer or Tracer()
        self.metrics = metrics or Metrics()

    @classmethod
    def create(
        cls, *, seed: int = 0, config: Any = None, wall_clock: bool = False
    ) -> "Observability":
        """A bundle with a seeded deterministic run id.

        :param seed: experiment seed, hashed into the run id.
        :param config: JSON-serializable run configuration, hashed too.
        :param wall_clock: capture wall-clock span durations (off keeps
            exports byte-identical across same-seed runs).
        """
        return cls(tracer=Tracer(deterministic_run_id(seed, config), wall_clock=wall_clock))

    # -- tracing ------------------------------------------------------------------

    def span(self, name: str, track: str | None = None, **attrs: Any):
        """Open a span (see :meth:`Tracer.span`)."""
        return self.tracer.span(name, track=track, **attrs)

    def advance(self, ticks: int = 1) -> None:
        """Advance the logical clock by ``ticks`` work units."""
        self.tracer.advance(ticks)

    # -- metrics ------------------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        """Bump a monotonic counter."""
        self.metrics.inc(name, by)

    def observe(self, name: str, value: float, bounds: tuple[float, ...] | None = None) -> None:
        """Record one histogram observation."""
        self.metrics.observe(name, value, bounds)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins level."""
        self.metrics.set_gauge(name, value)

    def counter(self, name: str) -> int:
        """The current value of a counter (0 if never incremented)."""
        return self.metrics.counters.get(name, 0)

    # -- export -------------------------------------------------------------------

    def profile(self) -> StageProfile:
        """The per-stage self-time rollup of everything traced so far."""
        return StageProfile.from_tracer(self.tracer)


class _NullObservability(Observability):
    """The disabled bundle: every operation is a no-op.

    Instrumented code writes ``self.obs = obs or NULL_OBS`` once and then
    calls unconditionally — no branching, no allocation, and therefore no
    behavioural difference between observed and unobserved runs.
    """

    enabled = False

    def __init__(self) -> None:  # no tracer/metrics allocated
        self.tracer = None  # type: ignore[assignment]
        self.metrics = None  # type: ignore[assignment]

    @contextmanager
    def _null_span(self) -> Iterator[None]:
        yield None

    def span(self, name: str, track: str | None = None, **attrs: Any):
        return self._null_span()

    def advance(self, ticks: int = 1) -> None:
        return None

    def inc(self, name: str, by: int = 1) -> None:
        return None

    def observe(self, name: str, value: float, bounds: tuple[float, ...] | None = None) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def counter(self, name: str) -> int:
        return 0

    def profile(self) -> StageProfile:
        raise RuntimeError("observability is disabled; no profile exists")


#: The shared disabled bundle (safe to share: it holds no state).
NULL_OBS = _NullObservability()
