"""Exporters: span JSONL, Chrome ``trace_event`` JSON, Prometheus text.

Three consumers, three formats, one determinism contract — with the
tracer's wall clock off, every byte written here is a pure function of
the seed and configuration:

- **span JSONL** — one JSON object per line (a run header, then every
  closed span in span-id order), greppable and diffable in CI;
- **Chrome trace JSON** — the ``trace_event`` format, so a pipeline run
  opens directly in ``chrome://tracing`` or Perfetto.  Logical ticks map
  to microseconds; each tracer track becomes one named thread row;
- **Prometheus text** — the whole metrics registry in the standard
  exposition format (see :meth:`repro.obs.metrics.Metrics.to_prometheus`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import Metrics
from repro.obs.tracer import Span, Tracer


def span_line(span: Span) -> dict[str, Any]:
    """The JSONL record for one closed span (wall time only when captured)."""
    record: dict[str, Any] = {
        "kind": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "track": span.track,
        "start_tick": span.start_tick,
        "end_tick": span.end_tick,
        "duration_ticks": span.duration_ticks,
        "attrs": span.attrs,
    }
    if span.wall_s is not None:
        record["wall_s"] = round(span.wall_s, 6)
    return record


def export_spans_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write a run-header line, then one line per closed span."""
    path = Path(path)
    lines = [
        json.dumps(
            {"kind": "run", "run_id": tracer.run_id, "total_ticks": tracer.tick},
            sort_keys=True,
        )
    ]
    lines.extend(json.dumps(span_line(span), sort_keys=True) for span in tracer.closed_spans)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """The ``traceEvents`` array: thread metadata, then complete events.

    Tracks are assigned ``tid``\\ s in first-use order; within each track
    events are sorted by start tick (then span id), so timestamps are
    monotonic per track.  One logical tick renders as one microsecond.
    """
    tids: dict[str, int] = {}
    for span in tracer.closed_spans:
        if span.track not in tids:
            tids[span.track] = len(tids) + 1
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    ordered = sorted(
        tracer.closed_spans, key=lambda s: (tids[s.track], s.start_tick, s.span_id)
    )
    for span in ordered:
        args: dict[str, Any] = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attrs)
        if span.wall_s is not None:
            args["wall_s"] = round(span.wall_s, 6)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "repro",
                "ts": span.start_tick,
                "dur": span.duration_ticks,
                "pid": 1,
                "tid": tids[span.track],
                "args": args,
            }
        )
    return events


def export_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write a ``chrome://tracing`` / Perfetto compatible trace file."""
    path = Path(path)
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"run_id": tracer.run_id, "tick_unit": "logical"},
    }
    path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n", encoding="utf-8")
    return path


def export_metrics_text(metrics: Metrics, path: str | Path, prefix: str = "repro") -> Path:
    """Write the registry in the Prometheus text exposition format."""
    path = Path(path)
    path.write_text(metrics.to_prometheus(prefix=prefix), encoding="utf-8")
    return path
