"""Request-scoped tracing across the process boundary (DESIGN.md §7).

The logical-tick :class:`~repro.obs.tracer.Tracer` covers in-process
pipeline work; this module covers the *service* path, where one request
crosses a socket and must be reconstructable end to end:

- :class:`TraceContext` — a W3C ``traceparent``-style context (32-hex
  trace id, 16-hex span id) that survives HTTP header transport.  Ids are
  deterministic: the trace id is the 16-hex obs run id plus a 16-hex
  monotonic counter, so two same-seed runs allocate identical ids.
- :class:`RequestTracer` — a thread-safe, wall-clock span recorder.  Each
  process (client, server) owns one; client request spans and server
  route-span trees share a trace id via header propagation.  Spans carry
  an epoch-ms start so lanes from different processes align on one
  timeline, and a perf-counter duration so widths are accurate.
- :class:`FlightRecorder` — a bounded ring of recent request records that
  snapshots itself when something goes wrong (5xx, shed, quarantine), so
  the moments *before* an incident survive for post-hoc debugging.
- :func:`join_chrome_trace` / :func:`audit_trace_join` — the post-run
  joiner: merge per-process span JSONL into one Chrome trace with one
  lane group per process, and verify every client request span reaches
  its server span tree through the trace id.

The null objects :data:`NULL_REQUEST_TRACER` and
:data:`NULL_FLIGHT_RECORDER` keep the uninstrumented path branch-light
and allocation-free, exactly like :data:`repro.obs.NULL_OBS`.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

TRACEPARENT_VERSION = "00"
#: Sampled flag, always set: every traced request is recorded.
TRACEPARENT_FLAGS = "01"

_HEX = set("0123456789abcdef")

#: Span-id prefixes per process, so client and server allocations can
#: never collide inside one joined trace (both still count from 1).
_PROCESS_TAGS = {"client": "c0", "server": "5e"}


def _is_hex(value: str, width: int) -> bool:
    return len(value) == width and set(value) <= _HEX


def _hex16(run_id: str) -> str:
    """Normalize an arbitrary run id to 16 lowercase hex digits.

    A :func:`repro.obs.tracer.deterministic_run_id` passes through
    unchanged; anything else is hashed, so the mapping stays stable.
    """
    candidate = run_id.lower()
    if _is_hex(candidate, 16):
        return candidate
    return hashlib.sha256(run_id.encode("utf-8")).hexdigest()[:16]


def _process_tag(process: str) -> str:
    tag = _PROCESS_TAGS.get(process)
    if tag is None:
        tag = hashlib.sha256(process.encode("utf-8")).hexdigest()[:2]
    return tag


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One hop of trace propagation: which trace, which parent span.

    :param trace_id: 32 lowercase hex digits, not all zero.
    :param span_id: 16 lowercase hex digits, not all zero — the span that
        owns the outgoing request (the receiver parents under it).
    """

    trace_id: str
    span_id: str

    def __post_init__(self) -> None:
        if not _is_hex(self.trace_id, 32) or self.trace_id == "0" * 32:
            raise ValueError(f"invalid trace_id {self.trace_id!r}")
        if not _is_hex(self.span_id, 16) or self.span_id == "0" * 16:
            raise ValueError(f"invalid span_id {self.span_id!r}")

    def to_traceparent(self) -> str:
        """The ``version-traceid-spanid-flags`` header value."""
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{TRACEPARENT_FLAGS}"


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header, returning ``None`` when malformed.

    Extraction is deliberately forgiving: a service must serve requests
    with absent, truncated, or corrupt headers identically to untraced
    ones, never reject them.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if not _is_hex(version, 2) or version == "ff":
        return None
    if not _is_hex(flags, 2):
        return None
    if not _is_hex(trace_id, 32) or trace_id == "0" * 32:
        return None
    if not _is_hex(span_id, 16) or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


@dataclass(slots=True)
class RequestSpan:
    """One wall-clock span inside a request trace.

    :param start_ms: epoch milliseconds at open — the *shared* timeline
        that lets client and server lanes align in a joined trace.
    :param dur_ms: perf-counter duration (``None`` while open).
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None
    name: str
    process: str
    track: str
    start_ms: float
    attrs: dict[str, Any] = field(default_factory=dict)
    dur_ms: float | None = None

    @property
    def closed(self) -> bool:
        return self.dur_ms is not None

    @property
    def context(self) -> TraceContext:
        """The propagation context for requests issued inside this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)


class RequestTracer:
    """Thread-safe request-span recorder for one process.

    Each request is handled on one thread, so the active-span stack is
    thread-local while the span list and id counters are shared under a
    lock.  Id allocation is deterministic (run-id prefix + monotonic
    counters); timestamps are wall clock by design — the service bench is
    the one deliberately wall-clocked corner of the repo.

    :param process: lane-group name in joined traces (``client``/``server``).
    :param run_id: prefixed (normalized to 16 hex) into every trace id.
    :param clock: epoch-seconds source, injectable for deterministic tests.
    :param perf: monotonic-seconds source for durations, also injectable.
    """

    enabled: bool = True

    def __init__(
        self,
        process: str,
        run_id: str = "run",
        *,
        clock: Callable[[], float] = time.time,
        perf: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.process = process
        self.run_id = run_id
        self.spans: list[RequestSpan] = []
        self._run16 = _hex16(run_id)
        self._tag = _process_tag(process)
        self._clock = clock
        self._perf = perf
        self._lock = threading.Lock()
        self._local = threading.local()
        self._trace_counter = 0
        self._span_counter = 0

    # -- id allocation ------------------------------------------------------------

    def _next_trace_id(self) -> str:
        with self._lock:
            self._trace_counter += 1
            return f"{self._run16}{self._trace_counter:016x}"

    def _next_span_id(self) -> str:
        with self._lock:
            self._span_counter += 1
            return f"{self._tag}{self._span_counter:014x}"

    # -- recording ----------------------------------------------------------------

    def _stack(self) -> list[RequestSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def _open(
        self,
        trace_id: str,
        parent_span_id: str | None,
        name: str,
        track: str,
        attrs: dict[str, Any],
    ) -> Iterator[RequestSpan]:
        span = RequestSpan(
            trace_id=trace_id,
            span_id=self._next_span_id(),
            parent_span_id=parent_span_id,
            name=name,
            process=self.process,
            track=track,
            start_ms=self._clock() * 1000.0,
            attrs=dict(attrs),
        )
        with self._lock:
            self.spans.append(span)
        stack = self._stack()
        stack.append(span)
        started = self._perf()
        try:
            yield span
        finally:
            stack.pop()
            span.dur_ms = (self._perf() - started) * 1000.0

    @contextmanager
    def request(self, name: str, *, track: str = "requests", **attrs: Any) -> Iterator[RequestSpan]:
        """Client side: a root span under a freshly allocated trace.

        Inject ``span.context`` into the outgoing request's headers so
        the server parents its route span under this one.
        """
        with self._open(self._next_trace_id(), None, name, track, attrs) as span:
            yield span

    @contextmanager
    def serve(
        self,
        name: str,
        parent: TraceContext | None,
        *,
        track: str = "requests",
        **attrs: Any,
    ) -> Iterator[RequestSpan]:
        """Server side: the route span for one incoming request.

        Continues ``parent`` when the caller sent a valid ``traceparent``;
        otherwise starts a fresh trace so untraced requests still record.
        """
        if parent is not None:
            trace_id, parent_span_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_span_id = self._next_trace_id(), None
        with self._open(trace_id, parent_span_id, name, track, attrs) as span:
            yield span

    @contextmanager
    def child(self, name: str, **attrs: Any) -> Iterator[RequestSpan]:
        """A child of this thread's innermost active span.

        With no active span (an endpoint called in-process, outside any
        request), the span becomes the root of a fresh trace — the
        instrumentation never refuses to record.
        """
        stack = self._stack()
        if stack:
            parent = stack[-1]
            trace_id, parent_span_id, track = parent.trace_id, parent.span_id, parent.track
        else:
            trace_id, parent_span_id, track = self._next_trace_id(), None, "requests"
        with self._open(trace_id, parent_span_id, name, track, attrs) as span:
            yield span

    # -- reading / export ---------------------------------------------------------

    @property
    def closed_spans(self) -> list[RequestSpan]:
        with self._lock:
            return [span for span in self.spans if span.closed]

    def spans_named(self, name: str) -> list[RequestSpan]:
        return [span for span in self.closed_spans if span.name == name]


class _NullRequestTracer(RequestTracer):
    """The disabled tracer: no ids, no spans, no allocation."""

    enabled = False

    def __init__(self) -> None:  # no lock/list/counters allocated
        self.process = "null"
        self.run_id = "null"
        self.spans = []

    @contextmanager
    def _null_span(self) -> Iterator[None]:
        yield None

    def request(self, name: str, *, track: str = "requests", **attrs: Any):
        return self._null_span()

    def serve(self, name: str, parent: TraceContext | None, *, track: str = "requests", **attrs):
        return self._null_span()

    def child(self, name: str, **attrs: Any):
        return self._null_span()

    @property
    def closed_spans(self) -> list[RequestSpan]:
        return []


#: The shared disabled request tracer (stateless, safe to share).
NULL_REQUEST_TRACER = _NullRequestTracer()


# -- flight recorder --------------------------------------------------------------


class FlightRecorder:
    """A bounded ring of recent request records with incident snapshots.

    Every handled request appends one structured record; when something
    goes wrong the caller :meth:`trip`\\ s the recorder and the ring's
    current contents are frozen into a dump — the requests *leading up
    to* the incident, which aggregate counters cannot reconstruct.

    :param capacity: ring size (records kept per dump).
    :param max_dumps: dumps retained before further trips are only
        counted, keeping memory bounded under a failure storm.
    """

    enabled: bool = True

    def __init__(self, capacity: int = 256, max_dumps: int = 32) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.dumps: list[dict[str, Any]] = []
        self.suppressed = 0
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def add(self, record: dict[str, Any]) -> None:
        """Append one request record (oldest falls off when full)."""
        with self._lock:
            self._ring.append(record)

    def trip(self, reason: str, **detail: Any) -> dict[str, Any] | None:
        """Snapshot the ring into a dump; ``None`` once ``max_dumps`` hit."""
        with self._lock:
            if len(self.dumps) >= self.max_dumps:
                self.suppressed += 1
                return None
            self._seq += 1
            dump = {
                "kind": "flight_dump",
                "seq": self._seq,
                "reason": reason,
                "detail": detail,
                "n_records": len(self._ring),
                "records": list(self._ring),
            }
            self.dumps.append(dump)
            return dump

    def export_jsonl(self, path: str | Path) -> Path:
        """One dump per line (header first), greppable after the fact."""
        path = Path(path)
        with self._lock:
            header = {
                "kind": "flight_recorder",
                "capacity": self.capacity,
                "n_dumps": len(self.dumps),
                "suppressed": self.suppressed,
            }
            lines = [json.dumps(header, sort_keys=True)]
            lines.extend(json.dumps(dump, sort_keys=True) for dump in self.dumps)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path


class _NullFlightRecorder(FlightRecorder):
    """The disabled recorder: records vanish, trips never dump."""

    enabled = False

    def __init__(self) -> None:
        self.capacity = 0
        self.max_dumps = 0
        self.dumps = []
        self.suppressed = 0

    def add(self, record: dict[str, Any]) -> None:
        return None

    def trip(self, reason: str, **detail: Any) -> dict[str, Any] | None:
        return None

    def export_jsonl(self, path: str | Path) -> Path:
        raise RuntimeError("flight recorder is disabled; nothing to export")


#: The shared disabled flight recorder (stateless, safe to share).
NULL_FLIGHT_RECORDER = _NullFlightRecorder()


# -- span JSONL + cross-process joining -------------------------------------------


def request_span_line(span: RequestSpan) -> dict[str, Any]:
    """The JSONL record for one closed request span."""
    return {
        "kind": "request_span",
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_span_id": span.parent_span_id,
        "name": span.name,
        "process": span.process,
        "track": span.track,
        "start_ms": round(span.start_ms, 3),
        "dur_ms": round(span.dur_ms, 3) if span.dur_ms is not None else None,
        "attrs": span.attrs,
    }


def export_request_spans_jsonl(tracer: RequestTracer, path: str | Path) -> Path:
    """Write a run-header line, then one line per closed span."""
    path = Path(path)
    spans = tracer.closed_spans
    lines = [
        json.dumps(
            {
                "kind": "run",
                "run_id": tracer.run_id,
                "process": tracer.process,
                "n_spans": len(spans),
            },
            sort_keys=True,
        )
    ]
    lines.extend(json.dumps(request_span_line(span), sort_keys=True) for span in spans)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_request_spans(path: str | Path) -> list[dict[str, Any]]:
    """Read the span records (header lines are skipped) from a JSONL file."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("kind") == "request_span":
            records.append(record)
    return records


def join_chrome_trace(groups: dict[str, list[dict[str, Any]]]) -> dict[str, Any]:
    """Merge per-process span records into one Chrome ``trace_event`` doc.

    Each process becomes one ``pid`` lane group (named via ``process_name``
    metadata, assigned in sorted order so client=1, server=2); each
    ``track`` within a process becomes a ``tid`` in first-use order.
    Timestamps are the shared epoch-ms clock converted to microseconds,
    so spans from both processes line up on one timeline.
    """
    pids = {process: i + 1 for i, process in enumerate(sorted(groups))}
    events: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "args": {"name": process}}
        for process, pid in pids.items()
    ]
    for process, pid in pids.items():
        spans = sorted(
            groups[process], key=lambda s: (s.get("start_ms", 0.0), s.get("span_id", ""))
        )
        tids: dict[str, int] = {}
        for span in spans:
            track = span.get("track", "requests")
            if track not in tids:
                tids[track] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tids[track],
                        "args": {"name": track},
                    }
                )
        for span in spans:
            args: dict[str, Any] = {
                "trace_id": span["trace_id"],
                "span_id": span["span_id"],
                "parent_span_id": span.get("parent_span_id"),
            }
            args.update(span.get("attrs", {}))
            dur_ms = span.get("dur_ms") or 0.0
            events.append(
                {
                    "ph": "X",
                    "name": span["name"],
                    "cat": "repro.request",
                    "ts": round(span["start_ms"] * 1000.0, 1),
                    "dur": max(round(dur_ms * 1000.0, 1), 1.0),
                    "pid": pid,
                    "tid": tids[span.get("track", "requests")],
                    "args": args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"joined_processes": sorted(groups)},
    }


def export_joined_chrome_trace(groups: dict[str, list[dict[str, Any]]], path: str | Path) -> Path:
    """Write the joined cross-process trace to ``path``."""
    path = Path(path)
    document = join_chrome_trace(groups)
    path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n", encoding="utf-8")
    return path


def audit_trace_join(
    client_spans: list[dict[str, Any]], server_spans: list[dict[str, Any]]
) -> dict[str, Any]:
    """Verify every client request span reaches a server span tree.

    A join is complete when each client root span's trace id appears on
    the server side, and every server root in that trace parents directly
    under the client span (the propagated context arrived intact).
    Client spans with no server tree, propagated server roots with a
    broken parent link, and server traces claiming a foreign parent all
    fail the audit.  Server traces rooted server-side (no parent) are
    legitimately untraced callers, not orphans.
    """
    client_roots = [s for s in client_spans if s.get("parent_span_id") is None]
    by_trace: dict[str, list[dict[str, Any]]] = {}
    for span in server_spans:
        by_trace.setdefault(span["trace_id"], []).append(span)

    joined = orphan_client = broken_parent = 0
    client_trace_ids = set()
    for root in client_roots:
        trace_id = root["trace_id"]
        client_trace_ids.add(trace_id)
        tree = by_trace.get(trace_id, [])
        if not tree:
            orphan_client += 1
            continue
        server_ids = {s["span_id"] for s in tree}
        roots = [s for s in tree if s.get("parent_span_id") not in server_ids]
        if roots and all(s.get("parent_span_id") == root["span_id"] for s in roots):
            joined += 1
        else:
            broken_parent += 1
    orphan_server = 0
    for trace_id, tree in by_trace.items():
        if trace_id in client_trace_ids:
            continue
        server_ids = {s["span_id"] for s in tree}
        roots = [s for s in tree if s.get("parent_span_id") not in server_ids]
        if any(s.get("parent_span_id") is not None for s in roots):
            orphan_server += 1
    return {
        "n_client_requests": len(client_roots),
        "n_server_spans": len(server_spans),
        "n_joined": joined,
        "n_orphan_client": orphan_client,
        "n_orphan_server": orphan_server,
        "n_broken_parent": broken_parent,
        "complete": (
            len(client_roots) > 0
            and joined == len(client_roots)
            and orphan_server == 0
            and broken_parent == 0
        ),
    }
