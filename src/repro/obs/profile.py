"""Stage self-time rollup over a span tree.

:class:`StageProfile` aggregates a tracer's spans by name into per-stage
totals: how many times the stage ran, its inclusive logical-tick cost, its
**self** cost (inclusive minus direct children — the time the stage spent
doing its own work rather than waiting on sub-stages), and, when the
tracer captured wall clock, the same split in seconds.

This is the attribution artifact: "where do the ticks and seconds go"
answered per pipeline stage, feeding the ``stages`` section of
``BENCH_perf.json`` and the ``repro trace`` report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracer import Tracer


@dataclass(slots=True)
class StageStats:
    """Aggregate cost of every span sharing one name."""

    name: str
    count: int = 0
    total_ticks: int = 0
    self_ticks: int = 0
    total_wall_s: float = 0.0
    self_wall_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_ticks": self.total_ticks,
            "self_ticks": self.self_ticks,
            "total_wall_s": round(self.total_wall_s, 6),
            "self_wall_s": round(self.self_wall_s, 6),
        }


@dataclass(slots=True)
class StageProfile:
    """Per-stage rollup of one traced run."""

    run_id: str
    total_ticks: int
    stages: dict[str, StageStats] = field(default_factory=dict)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "StageProfile":
        """Aggregate every closed span by name.

        Self time subtracts only *direct* children, so a grandchild's cost
        is charged to its own parent, never twice.
        """
        spans = tracer.closed_spans
        child_ticks: dict[int, int] = {}
        child_wall: dict[int, float] = {}
        for span in spans:
            if span.parent_id is not None:
                child_ticks[span.parent_id] = (
                    child_ticks.get(span.parent_id, 0) + span.duration_ticks
                )
                if span.wall_s is not None:
                    child_wall[span.parent_id] = (
                        child_wall.get(span.parent_id, 0.0) + span.wall_s
                    )
        profile = cls(run_id=tracer.run_id, total_ticks=tracer.tick)
        for span in spans:
            stats = profile.stages.get(span.name)
            if stats is None:
                stats = profile.stages[span.name] = StageStats(name=span.name)
            stats.count += 1
            stats.total_ticks += span.duration_ticks
            stats.self_ticks += span.duration_ticks - child_ticks.get(span.span_id, 0)
            if span.wall_s is not None:
                stats.total_wall_s += span.wall_s
                stats.self_wall_s += max(0.0, span.wall_s - child_wall.get(span.span_id, 0.0))
        return profile

    def stage(self, name: str) -> StageStats | None:
        return self.stages.get(name)

    def to_dict(self) -> dict[str, Any]:
        """Key-sorted JSON form (byte-stable for same-seed runs when the
        tracer ran without wall clock)."""
        return {
            "run_id": self.run_id,
            "total_ticks": self.total_ticks,
            "stages": {name: stats.to_dict() for name, stats in sorted(self.stages.items())},
        }

    def render(self) -> str:
        """Fixed-width human summary, heaviest self-time first."""
        lines = [
            f"Stage profile — run {self.run_id} ({self.total_ticks} ticks)",
            f"  {'stage':<20} {'runs':>5} {'ticks':>9} {'self':>9} {'wall s':>9} {'self s':>9}",
        ]
        ordered = sorted(
            self.stages.values(), key=lambda s: (-s.self_ticks, s.name)
        )
        for stats in ordered:
            lines.append(
                f"  {stats.name:<20} {stats.count:>5d} {stats.total_ticks:>9d} "
                f"{stats.self_ticks:>9d} {stats.total_wall_s:>9.3f} {stats.self_wall_s:>9.3f}"
            )
        return "\n".join(lines)
