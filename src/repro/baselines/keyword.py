"""The keyword/regex baseline detector.

Represents the pre-existing practice the paper implicitly competes with: a
hand-maintained list of suspicious parameter names and identifier *shapes*.
Three escalation modes expose the trade-off the signature approach
escapes:

- ``conservative`` — named parameters plus unambiguous value syntaxes
  (15-digit IMEI/IMSI, ``89``-prefixed ICCID, carrier names).  Low false
  positives, but blind to identifiers behind innocuous parameter names
  (``dtk``, ``cid``, ``um`` ...) and to hashed values.
- ``standard`` — adds the 16-hex Android-ID *shape*.  Catches unnamed
  plain Android IDs but collides with every 16-hex session token.
- ``aggressive`` — adds MD5/SHA1 hex shapes.  Catches hashed identifiers
  but flags essentially every request carrying a random token.

The benches quantify all three against the clustering signatures, which
achieve the recall of ``aggressive`` at false-positive rates below
``conservative``.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.http.packet import HttpPacket

#: Parameter names ad SDKs historically used for device identifiers.
SUSPICIOUS_KEYS: tuple[str, ...] = (
    "imei", "imsi", "udid", "uuid", "deviceid", "device_id", "androidid",
    "android_id", "iccid", "auid", "dvid",
)

#: Unambiguous raw-identifier value syntaxes.
_STRICT_VALUE_PATTERNS: tuple[str, ...] = (
    r"\b\d{15}\b",  # IMEI / IMSI
    r"\b89\d{17}\b",  # ICCID (SIM serial)
)

#: The Android-ID shape — 16 hex chars, which random session tokens mimic.
_ANDROID_ID_SHAPE = r"\b[0-9a-f]{16}\b"

#: Hash digest shapes — what every MD5/SHA1 (and most tokens) look like.
_HASH_PATTERNS: tuple[str, ...] = (
    r"\b[0-9a-f]{32}\b",  # MD5
    r"\b[0-9a-f]{40}\b",  # SHA1
)

_CARRIER_NAMES: tuple[str, ...] = ("docomo", "softbank", "kddi", "emobile", "willcom")

MODES: tuple[str, ...] = ("conservative", "standard", "aggressive")


class KeywordDetector:
    """Regex screening over packet content.

    :param mode: escalation level (see module docstring).
    :raises ValueError: for an unknown mode.
    """

    def __init__(self, mode: str = "conservative") -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        self.mode = mode
        key_alternatives = "|".join(re.escape(k) for k in SUSPICIOUS_KEYS)
        patterns = [
            # suspicious key with a non-trivial value
            rf"[?&;\s]({key_alternatives})=[^&\s;]{{6,}}",
            *_STRICT_VALUE_PATTERNS,
            *(re.escape(c) for c in _CARRIER_NAMES),
        ]
        if mode in ("standard", "aggressive"):
            patterns.append(_ANDROID_ID_SHAPE)
        if mode == "aggressive":
            patterns.extend(_HASH_PATTERNS)
        self._regex = re.compile("|".join(f"(?:{p})" for p in patterns), re.IGNORECASE)

    def is_sensitive(self, packet: HttpPacket) -> bool:
        """Whether any pattern matches the packet's inspected content."""
        return bool(self._regex.search(packet.canonical_text()))

    def screen(self, packets: Iterable[HttpPacket]) -> list[bool]:
        return [self.is_sensitive(packet) for packet in packets]

    def evaluate(
        self, suspicious: Sequence[HttpPacket], normal: Sequence[HttpPacket]
    ) -> tuple[float, float]:
        """``(detection rate, false positive rate)`` over labeled groups.

        No training sample exists, so the rates are plain fractions (the
        paper's N-corrections do not apply to this baseline).
        """
        detected = sum(1 for p in suspicious if self.is_sensitive(p))
        false_alarms = sum(1 for p in normal if self.is_sensitive(p))
        tp = detected / len(suspicious) if suspicious else 0.0
        fp = false_alarms / len(normal) if normal else 0.0
        return tp, fp
