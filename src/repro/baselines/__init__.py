"""Comparison baselines for the signature detector.

The paper argues signatures beat naive approaches; these baselines make
that argument testable:

- :class:`repro.baselines.keyword.KeywordDetector` — hand-written regexes
  over parameter names and identifier shapes (what a mitmproxy-script
  style detector does),
- :class:`repro.baselines.exactmatch.ExactMatchDetector` — memorize the
  training packets, flag only byte-identical recurrences,
- :mod:`repro.baselines.variants` — distance ablations (destination-only,
  content-only) of the paper's own pipeline.
"""

from repro.baselines.exactmatch import ExactMatchDetector
from repro.baselines.keyword import KeywordDetector
from repro.baselines.variants import ablation_config, run_variant

__all__ = [
    "KeywordDetector",
    "ExactMatchDetector",
    "ablation_config",
    "run_variant",
]
