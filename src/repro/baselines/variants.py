"""Distance and linkage ablations of the paper's own pipeline.

The paper motivates combining destination and content distances ("this
broader definition causes results sent to the same server to be clustered
together, creating advertisement module specific signatures").  These
helpers run the identical pipeline with one side of the metric switched
off, or a different linkage/compressor, so the ablation benches can
quantify the claim.
"""

from __future__ import annotations

from repro.clustering.linkage import Linkage
from repro.core.pipeline import DetectionPipeline, PipelineConfig, PipelineResult
from repro.dataset.trace import Trace
from repro.distance.ncd import Compressor
from repro.distance.packet import PacketDistance
from repro.errors import ReproError
from repro.sensitive.payload_check import PayloadCheck

#: Named ablation variants.
VARIANTS: tuple[str, ...] = (
    "paper",  # d_dst + d_header, group average, zlib
    "destination_only",  # d_dst alone
    "content_only",  # d_header alone
    "whois",  # registration-verified IP distance (paper §VI suggestion)
    "single_linkage",
    "complete_linkage",
    "ward_linkage",
    "bz2",
    "lzma",
)


def ablation_config(variant: str) -> PipelineConfig:
    """The pipeline configuration for a named variant.

    :raises ReproError: for an unknown variant name.
    """
    if variant == "paper":
        return PipelineConfig()
    if variant == "destination_only":
        return PipelineConfig(distance=PacketDistance.destination_only())
    if variant == "content_only":
        return PipelineConfig(distance=PacketDistance.content_only())
    if variant == "whois":
        from repro.net.registry import build_corpus_registry

        return PipelineConfig(distance=PacketDistance.whois_verified(build_corpus_registry()))
    if variant == "single_linkage":
        return PipelineConfig(linkage=Linkage.SINGLE)
    if variant == "complete_linkage":
        return PipelineConfig(linkage=Linkage.COMPLETE)
    if variant == "ward_linkage":
        return PipelineConfig(linkage=Linkage.WARD)
    if variant == "bz2":
        return PipelineConfig(distance=PacketDistance.paper(Compressor.BZ2))
    if variant == "lzma":
        return PipelineConfig(distance=PacketDistance.paper(Compressor.LZMA))
    raise ReproError(f"unknown ablation variant {variant!r}; choose from {VARIANTS}")


def run_variant(
    trace: Trace,
    payload_check: PayloadCheck,
    variant: str,
    n_sample: int,
    seed: int = 0,
) -> PipelineResult:
    """Run one full generation + evaluation under a named variant."""
    pipeline = DetectionPipeline(trace, payload_check, ablation_config(variant))
    return pipeline.run(n_sample, seed=seed)
