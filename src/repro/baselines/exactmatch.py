"""The exact-match (memorization) baseline.

The degenerate alternative to generalizing signatures: remember the
sampled sensitive packets byte-for-byte and flag only identical
recurrences.  Because ad requests carry fresh timestamps, sequence numbers
and session tokens, near-zero recall is expected — which is precisely why
the paper clusters and extracts *invariant* tokens instead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.http.packet import HttpPacket


class ExactMatchDetector:
    """Flags packets whose inspected content was seen during training.

    :param training: the sampled sensitive packets to memorize.
    """

    def __init__(self, training: Sequence[HttpPacket]) -> None:
        self._known: set[str] = {packet.canonical_text() for packet in training}

    def __len__(self) -> int:
        return len(self._known)

    def is_sensitive(self, packet: HttpPacket) -> bool:
        return packet.canonical_text() in self._known

    def screen(self, packets: Iterable[HttpPacket]) -> list[bool]:
        return [self.is_sensitive(packet) for packet in packets]

    def evaluate(
        self, suspicious: Sequence[HttpPacket], normal: Sequence[HttpPacket], n_sample: int
    ) -> tuple[float, float]:
        """``(TP, FP)`` using the paper's N-corrected equations."""
        detected = sum(1 for p in suspicious if self.is_sensitive(p))
        false_alarms = sum(1 for p in normal if self.is_sensitive(p))
        tp_denominator = len(suspicious) - n_sample
        fp_denominator = len(normal) - n_sample
        tp = max(0.0, (detected - n_sample) / tp_denominator) if tp_denominator > 0 else 0.0
        fp = false_alarms / fp_denominator if fp_denominator > 0 else 0.0
        return tp, fp
