"""Evaluation: the paper's detection metrics, experiments, and reports.

- :mod:`repro.eval.metrics` — TP/FN/FP percentages exactly as defined in
  Section V-B,
- :mod:`repro.eval.experiments` — the Fig 4 sweep and ablation runners,
- :mod:`repro.eval.report` — text rendering of every table and figure.

Only the metrics are re-exported here; import the experiment runners from
their modules (``from repro.eval.experiments import run_fig4_sweep``) —
they sit above :mod:`repro.core` in the layering, so importing them at
package-init time would be circular.
"""

from repro.eval.metrics import DetectionMetrics, compute_metrics

__all__ = [
    "DetectionMetrics",
    "compute_metrics",
]
