"""Chaos sweep: detection quality under an unreliable distribution channel.

The Fig-4 bench asks "how good are the signatures?"; this experiment asks
"how much of that quality survives when the server -> device channel
fails?".  For each swept fault rate a fleet of simulated devices fetches
the published signature set through a :class:`~repro.reliability.faults.FaultPlan`
(drops, truncation, bit corruption, delays, stale cache reads), then
screens the full labelled dataset with whatever it ended up holding:

- a **fresh** verified envelope (possibly a stale-but-valid older version),
- its **last-known-good** set when every transfer this session failed, or
- the **degraded-mode** keyword baseline when no valid set ever arrived.

The headline property is graceful degradation: mean detection should never
cliff to zero, and should stay above ``TP(0) * (1 - fault_rate)`` — the
floor asserted by ``benchmarks/test_chaos_distribution.py``.

The second sweep (:func:`run_pipeline_chaos_sweep`) targets the *server
side*: the supervised pipeline (:mod:`repro.supervision`) runs under
combined chunk-level worker faults (crash / hang / poison) and injected
inter-stage crashes.  Its headline property is stronger than graceful
degradation — **exact recovery**: at every swept point the recovered run's
condensed distance matrix and signature set must be byte-identical to the
fault-free baseline (``matrix_identical`` / ``signatures_identical``),
asserted by ``benchmarks/test_chaos_pipeline.py`` and the CI chaos job.

Determinism: both sweeps derive from explicit seeds; running them twice
yields identical points.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.distribution import FetchStatus, SignatureChannel, SignatureFetcher
from repro.core.flowcontrol import FlowControlApp
from repro.core.server import ServerConfig, SignatureServer
from repro.reliability.faults import FaultPlan
from repro.reliability.retry import CircuitBreaker, RetryPolicy
from repro.sensitive.payload_check import PayloadCheck


@dataclass(frozen=True, slots=True)
class ChaosPoint:
    """One fault rate's aggregate outcome across the device fleet.

    Rates are percentages; fractions are in ``[0, 1]`` over devices.
    """

    fault_rate: float
    n_devices: int
    fresh_fraction: float
    cached_fraction: float
    degraded_fraction: float
    tp_percent: float
    fp_percent: float
    mean_attempts: float

    @property
    def reachable_fraction(self) -> float:
        """Devices holding *some* server-generated set (fresh or cached)."""
        return self.fresh_fraction + self.cached_fraction

    def to_dict(self) -> dict:
        return {
            "fault_rate": self.fault_rate,
            "n_devices": self.n_devices,
            "fresh_fraction": round(self.fresh_fraction, 6),
            "cached_fraction": round(self.cached_fraction, 6),
            "degraded_fraction": round(self.degraded_fraction, 6),
            "reachable_fraction": round(self.reachable_fraction, 6),
            "tp_percent": round(self.tp_percent, 6),
            "fp_percent": round(self.fp_percent, 6),
            "mean_attempts": round(self.mean_attempts, 6),
        }


def run_chaos_sweep(
    trace: Iterable,
    check: PayloadCheck,
    rates: Sequence[float],
    n_sample: int = 60,
    n_devices: int = 8,
    seed: int = 0,
    retry: RetryPolicy | None = None,
    detector_mode: str = "conservative",
    workers: int = 1,
) -> list[ChaosPoint]:
    """Sweep fault rates over the distribution channel.

    The server ingests ``trace`` once and generates two signature-set
    versions (a half-sample v1, then the full-sample v2).  Per rate, each
    device runs *two* fetch sessions: one while v1 is the latest, one
    after v2 is published.  A device whose second session fails entirely
    keeps screening with its last-known-good v1 (``cached``); a device
    that never completed any session screens with the degraded-mode
    keyword baseline.  Stale-read faults serve a valid-but-older envelope
    — the realistic cost of a lagging cache.  Every device then screens
    the entire labelled dataset.

    :param trace: the full captured dataset.
    :param check: ground-truth labeler for the capture device.
    :param rates: total fault rates to sweep (each in ``[0, 1)``).
    :param n_sample: N for the v2 (current) signature generation.
    :param n_devices: fleet size per rate.
    :param seed: determinism root for sampling, faults, and jitter.
    :param retry: device retry policy (default: 3 attempts, fast backoff).
    :param detector_mode: keyword-baseline escalation used in degraded mode.
    :param workers: distance-engine process count for signature generation
        (sweep output is bit-identical for any setting).
    """
    retry = retry or RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0, jitter=0.25)
    server = SignatureServer(check, config=ServerConfig(workers=workers))
    server.ingest(trace)
    v1 = server.generate(max(10, n_sample // 2), seed=seed)
    v2 = server.generate(n_sample, seed=seed + 1)
    suspicious = server.suspicious
    normal = server.normal

    points: list[ChaosPoint] = []
    for rate in rates:
        # Seed derived from the rate itself (not its sweep position) so a
        # point is reproducible regardless of which rates it is swept with.
        plan = FaultPlan.uniform(rate, seed=seed + 7919 * (1 + round(rate * 1000)))
        channel = SignatureChannel(plan)
        devices = [
            (
                SignatureFetcher(
                    channel,
                    retry=retry,
                    breaker=CircuitBreaker(failure_threshold=retry.max_attempts, cooldown=8.0),
                    seed=seed,
                    device_id=f"device-{device_index}",
                ),
                FlowControlApp.degraded(mode=detector_mode),
            )
            for device_index in range(n_devices)
        ]
        channel.publish(v1.signatures)
        for fetcher, app in devices:
            fetcher.fetch_into(app)
        channel.publish(v2.signatures)
        statuses: Counter[FetchStatus] = Counter()
        tp_sum = fp_sum = attempts_sum = 0.0
        for fetcher, app in devices:
            result = fetcher.fetch_into(app)
            statuses[result.status] += 1
            attempts_sum += result.attempts
            detected = sum(1 for packet in suspicious if app.screen(packet).flagged)
            false_alarms = sum(1 for packet in normal if app.screen(packet).flagged)
            tp_sum += 100.0 * detected / len(suspicious) if suspicious else 0.0
            fp_sum += 100.0 * false_alarms / len(normal) if normal else 0.0
        points.append(
            ChaosPoint(
                fault_rate=rate,
                n_devices=n_devices,
                fresh_fraction=statuses[FetchStatus.FRESH] / n_devices,
                cached_fraction=statuses[FetchStatus.CACHED] / n_devices,
                degraded_fraction=statuses[FetchStatus.DEGRADED] / n_devices,
                tp_percent=tp_sum / n_devices,
                fp_percent=fp_sum / n_devices,
                mean_attempts=attempts_sum / n_devices,
            )
        )
    return points


def chaos_report(points: Sequence[ChaosPoint]) -> dict:
    """The sweep as one JSON-ready document (``repro chaos --json``)."""
    return {
        "bench": "chaos",
        "n_points": len(points),
        "points": [point.to_dict() for point in points],
    }


def render_chaos(points: Sequence[ChaosPoint]) -> str:
    """A fixed-width table of the sweep, in the repo's report style."""
    lines = [
        "Chaos sweep — detection under distribution faults",
        f"{'fault%':>7} {'fresh':>6} {'cached':>7} {'degr.':>6} "
        f"{'TP%':>6} {'FP%':>6} {'tries':>6}",
    ]
    for point in points:
        lines.append(
            f"{100 * point.fault_rate:>6.0f}% "
            f"{point.fresh_fraction:>6.2f} {point.cached_fraction:>7.2f} "
            f"{point.degraded_fraction:>6.2f} {point.tp_percent:>6.1f} "
            f"{point.fp_percent:>6.1f} {point.mean_attempts:>6.2f}"
        )
    return "\n".join(lines)


# -- pipeline chaos (supervised execution under worker + stage faults) -------------


@dataclass(frozen=True, slots=True)
class PipelineChaosPoint:
    """One chunk-fault rate's supervised-run outcome vs the fault-free baseline.

    ``stages_executed`` counts stage executions across *all* attempts (the
    checkpoint journal length — 7 means no stage ever recomputed);
    ``stages_replayed`` counts checkpoint replays in the final attempt.
    """

    chunk_fault_rate: float
    crash_stages: tuple[str, ...]
    attempts: int
    restarts: int
    recovered: bool
    matrix_identical: bool
    signatures_identical: bool
    chunks_retried: int
    chunks_quarantined: int
    faults_injected: int
    stages_executed: int
    stages_replayed: int

    @property
    def invariant_holds(self) -> bool:
        """The exact-recovery invariant: recovered AND byte-identical outputs."""
        return self.recovered and self.matrix_identical and self.signatures_identical

    def to_dict(self) -> dict:
        return {
            "chunk_fault_rate": self.chunk_fault_rate,
            "crash_stages": list(self.crash_stages),
            "attempts": self.attempts,
            "restarts": self.restarts,
            "recovered": self.recovered,
            "matrix_identical": self.matrix_identical,
            "signatures_identical": self.signatures_identical,
            "invariant_holds": self.invariant_holds,
            "chunks_retried": self.chunks_retried,
            "chunks_quarantined": self.chunks_quarantined,
            "faults_injected": self.faults_injected,
            "stages_executed": self.stages_executed,
            "stages_replayed": self.stages_replayed,
        }


def run_pipeline_chaos_sweep(
    trace: Iterable,
    check: PayloadCheck,
    chunk_rates: Sequence[float],
    crash_stages: Sequence[str] = ("payload_check", "distance_matrix", "cut"),
    n_sample: int = 60,
    seed: int = 0,
    workers: int = 1,
    retry: RetryPolicy | None = None,
    max_restarts: int = 8,
    chunk_pairs: int = 128,
) -> list[PipelineChaosPoint]:
    """Sweep chunk-fault rates over the supervised pipeline.

    A fault-free :class:`~repro.supervision.runner.StagedPipeline` run
    establishes the baseline (condensed matrix bytes, serialized signature
    set).  Then, per swept rate, a fresh checkpoint store and a
    :class:`~repro.supervision.supervisor.Supervisor` drive the pipeline
    through a seeded :class:`~repro.reliability.workerfaults.WorkerFaultPlan`
    (worker crash / hang / poison at chunk granularity) **and** an
    explicit :class:`~repro.supervision.crash.CrashPlan` that kills the
    run at every stage boundary in ``crash_stages``, once each.  The point
    records whether the run completed, how much recovery it took, and
    whether the outputs came back byte-identical.

    :param trace: the full captured dataset.
    :param check: ground-truth labeler for the capture device.
    :param chunk_rates: total worker-fault rates to sweep (each in ``[0, 1]``).
    :param crash_stages: stage boundaries killed once per supervised run.
    :param n_sample: N for signature generation.
    :param seed: determinism root for sampling, faults, and crash draws.
    :param workers: distance-engine process count (output is bit-identical
        for any setting).
    :param retry: chunk re-dispatch policy (default: engine default).
    :param max_restarts: supervisor crash budget per point.
    :param chunk_pairs: pairs per engine chunk — deliberately small so a
        run spans many chunks and chunk-level faults actually land.
    """
    from repro.core.pipeline import PipelineConfig
    from repro.reliability.workerfaults import WorkerFaultPlan
    from repro.signatures.store import SignatureStore
    from repro.supervision import CheckpointStore, CrashPlan, StagedPipeline, Supervisor

    config = PipelineConfig(workers=workers)
    baseline = StagedPipeline(trace, check, config, chunk_pairs=chunk_pairs).run(
        n_sample, seed=seed
    )
    baseline_matrix = baseline.matrix.values.tobytes()
    baseline_signatures = SignatureStore.dumps(baseline.signatures)

    points: list[PipelineChaosPoint] = []
    for rate in chunk_rates:
        # Seed derived from the rate itself (not its sweep position) so a
        # point is reproducible regardless of which rates it is swept with.
        point_seed = seed + 7919 * (1 + round(rate * 1000))
        fault_plan = WorkerFaultPlan.uniform(rate, seed=point_seed) if rate else None
        pipeline = StagedPipeline(
            trace,
            check,
            config,
            store=CheckpointStore(),
            crash_plan=CrashPlan.after(*crash_stages, seed=point_seed),
            fault_plan=fault_plan,
            retry=retry,
            chunk_pairs=chunk_pairs,
        )
        outcome = Supervisor(pipeline, max_restarts=max_restarts).run(n_sample, seed=seed)
        stats = outcome.result.engine_stats
        points.append(
            PipelineChaosPoint(
                chunk_fault_rate=rate,
                crash_stages=tuple(crash_stages),
                attempts=outcome.attempts,
                restarts=outcome.restarts,
                recovered=outcome.recovered and (stats is None or stats.recovered),
                matrix_identical=outcome.result.matrix.values.tobytes() == baseline_matrix,
                signatures_identical=(
                    SignatureStore.dumps(outcome.result.signatures) == baseline_signatures
                ),
                chunks_retried=stats.chunks_retried if stats else 0,
                chunks_quarantined=stats.chunks_quarantined if stats else 0,
                faults_injected=stats.faults_injected if stats else 0,
                # Journal length = total stage executions across ALL
                # attempts; exactly 7 proves checkpoints absorbed every
                # re-run.  Replays are from the final (successful) attempt.
                stages_executed=len(pipeline.store.stages),
                stages_replayed=len(outcome.result.stages_replayed),
            )
        )
    return points


# -- federation chaos (crowdsourced ingest under device faults) --------------------


@dataclass(frozen=True, slots=True)
class FederationChaosPoint:
    """One device-fault rate's federation outcome vs the fault-free baseline.

    The headline invariant is **byte-identity**: validation, the dedup
    window, quarantine, and the k-anonymity min-support gate must absorb
    every injected fault class so completely that the federated signature
    set serializes to the same bytes as the fault-free same-seed run.
    """

    fault_rate: float
    n_devices: int
    sends: int
    accepted: int
    rejected_malformed: int
    rejected_duplicate: int
    rejected_replay: int
    rejected_quarantined: int
    shed: int
    quarantine_bans: int
    quarantine_releases: int
    faults_injected: int
    admitted_tokens: int
    n_signatures: int
    signatures_identical: bool
    tokens_identical: bool

    @property
    def invariant_holds(self) -> bool:
        """Byte-identical signatures AND an identical admitted-token set."""
        return self.signatures_identical and self.tokens_identical

    def to_dict(self) -> dict:
        return {
            "fault_rate": self.fault_rate,
            "n_devices": self.n_devices,
            "sends": self.sends,
            "accepted": self.accepted,
            "rejected_malformed": self.rejected_malformed,
            "rejected_duplicate": self.rejected_duplicate,
            "rejected_replay": self.rejected_replay,
            "rejected_quarantined": self.rejected_quarantined,
            "shed": self.shed,
            "quarantine_bans": self.quarantine_bans,
            "quarantine_releases": self.quarantine_releases,
            "faults_injected": self.faults_injected,
            "admitted_tokens": self.admitted_tokens,
            "n_signatures": self.n_signatures,
            "signatures_identical": self.signatures_identical,
            "tokens_identical": self.tokens_identical,
            "invariant_holds": self.invariant_holds,
        }


def run_federation_chaos_sweep(
    corpus,
    rates: Sequence[float],
    n_devices: int = 24,
    reports_per_device: int = 6,
    min_support: int = 2,
    seed: int = 0,
    obs=None,
) -> list["FederationChaosPoint"]:
    """Sweep device-fault rates over the crowdsourced federation round.

    A fault-free :func:`~repro.federation.fleet.run_federation` run with
    the same seed establishes the baseline signature bytes and admitted
    token set; then each swept rate drives the same fleet through a
    :class:`~repro.federation.faults.DeviceFaultPlan` spreading the rate
    across malform / duplicate / replay / poison / flood.  Corpus, device
    substreams, and honest sequence numbers are held fixed — only the
    fault plan varies — so any byte drift is the federation layer's fault.

    :param corpus: the simulated population devices report from.
    :param rates: total device-fault rates to sweep (each in ``[0, 1)``).
    :param n_devices: fleet size per point.
    :param reports_per_device: honest observations per device.
    :param min_support: the k-anonymity gate under test.
    :param seed: determinism root shared by every point.
    :param obs: optional observability bundle threaded into ingest.
    """
    from repro.federation.faults import DeviceFaultPlan
    from repro.federation.fleet import run_federation

    baseline = run_federation(
        corpus,
        seed=seed,
        n_devices=n_devices,
        reports_per_device=reports_per_device,
        min_support=min_support,
        obs=obs,
    )
    points: list[FederationChaosPoint] = []
    for rate in rates:
        # Seed derived from the rate itself (not its sweep position) so a
        # point is reproducible regardless of which rates it is swept with.
        point_seed = seed + 7919 * (1 + round(rate * 1000))
        plan = DeviceFaultPlan.uniform(rate, seed=point_seed) if rate else None
        result = run_federation(
            corpus,
            seed=seed,
            n_devices=n_devices,
            reports_per_device=reports_per_device,
            min_support=min_support,
            fault_plan=plan,
            obs=obs,
        )
        counts = result.ingest_stats["counts"]
        quarantine = result.ingest_stats["quarantine"]
        points.append(
            FederationChaosPoint(
                fault_rate=rate,
                n_devices=n_devices,
                sends=result.sends,
                accepted=result.ingest_stats["accepted"],
                rejected_malformed=counts["rejected_malformed"],
                rejected_duplicate=counts["rejected_duplicate"],
                rejected_replay=counts["rejected_replay"],
                rejected_quarantined=counts["rejected_quarantined"],
                shed=counts["shed_dropped"] + counts["shed_degraded"],
                quarantine_bans=quarantine["bans"],
                quarantine_releases=quarantine["releases"],
                faults_injected=sum(
                    count for kind, count in result.fault_counts.items() if kind != "none"
                ),
                admitted_tokens=len(result.admitted_tokens),
                n_signatures=len(result.signatures),
                signatures_identical=result.signature_bytes == baseline.signature_bytes,
                tokens_identical=result.admitted_tokens == baseline.admitted_tokens,
            )
        )
    return points


def federation_chaos_report(points: Sequence["FederationChaosPoint"]) -> dict:
    """The sweep as one JSON document (``repro chaos --target federation --json``)."""
    return {
        "bench": "chaos_federation",
        "n_points": len(points),
        "invariant_holds": all(point.invariant_holds for point in points),
        "points": [point.to_dict() for point in points],
    }


def render_federation_chaos(points: Sequence["FederationChaosPoint"]) -> str:
    """A fixed-width table of the federation sweep."""
    lines = [
        "Chaos sweep — crowdsourced federation under device faults",
        f"{'fault%':>7} {'sends':>6} {'accept':>7} {'malfrm':>7} {'dup':>6} "
        f"{'replay':>7} {'quar':>5} {'bans':>5} {'tokens':>7} {'sigs':>5}",
    ]
    for point in points:
        lines.append(
            f"{100 * point.fault_rate:>6.0f}% "
            f"{point.sends:>6d} {point.accepted:>7d} {point.rejected_malformed:>7d} "
            f"{point.rejected_duplicate:>6d} {point.rejected_replay:>7d} "
            f"{point.rejected_quarantined:>5d} {point.quarantine_bans:>5d} "
            f"{point.admitted_tokens:>7d} "
            f"{'=' if point.invariant_holds else '!':>5}"
        )
    verdict = "holds" if all(p.invariant_holds for p in points) else "VIOLATED"
    lines.append(f"byte-identity invariant: {verdict} across {len(points)} points")
    return "\n".join(lines)


def pipeline_chaos_report(points: Sequence[PipelineChaosPoint]) -> dict:
    """The sweep as one JSON-ready document (``repro chaos --target pipeline --json``)."""
    return {
        "bench": "chaos_pipeline",
        "n_points": len(points),
        "invariant_holds": all(point.invariant_holds for point in points),
        "points": [point.to_dict() for point in points],
    }


def render_pipeline_chaos(points: Sequence[PipelineChaosPoint]) -> str:
    """A fixed-width table of the supervised-pipeline sweep."""
    lines = [
        "Chaos sweep — supervised pipeline under worker + stage faults",
        f"{'chunk%':>7} {'tries':>6} {'restart':>8} {'retried':>8} "
        f"{'quarant':>8} {'faults':>7} {'matrix':>7} {'sigs':>5}",
    ]
    for point in points:
        lines.append(
            f"{100 * point.chunk_fault_rate:>6.0f}% "
            f"{point.attempts:>6d} {point.restarts:>8d} {point.chunks_retried:>8d} "
            f"{point.chunks_quarantined:>8d} {point.faults_injected:>7d} "
            f"{'=' if point.matrix_identical else '!':>7} "
            f"{'=' if point.signatures_identical else '!':>5}"
        )
    verdict = "holds" if all(p.invariant_holds for p in points) else "VIOLATED"
    lines.append(f"exact-recovery invariant: {verdict} across {len(points)} points")
    return "\n".join(lines)
