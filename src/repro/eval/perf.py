"""Perf bench harness: a machine-readable timing of the §IV hot paths.

The paper's pipeline cost is dominated by the M(M-1)/2 pairwise distance
build; :func:`run_perf_bench` times that build three ways — the legacy
serial loop (:func:`repro.distance.matrix.distance_matrix`), the engine
in-process, and the engine across a worker pool — then times linkage and
matcher screening, verifies the three matrices are **bit-identical**, and
returns a :class:`PerfReport` that serializes to ``BENCH_perf.json``.

Two speedups are reported:

- ``engine_vs_naive`` — the decomposition/caching win, visible on any
  hardware (unique-value component caches shrink the per-pair work);
- ``parallel_vs_serial`` — the fan-out win, which requires actual cores:
  :class:`PerfBudget` only enforces its floor when the host has at least
  as many CPUs as the bench requested workers, and the report always
  records ``cpu_count`` so a one-core container's numbers are not read
  as a regression.

CI runs ``repro bench --quick`` and fails the build when the parallel
matrix diverges from the serial one, keeping ``BENCH_perf.json`` an
honest trajectory of both correctness and speed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.clustering.linkage import Linkage, agglomerate
from repro.distance.engine import DistanceEngine
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.obs import Observability
from repro.signatures.generator import GeneratorConfig, SignatureGenerator
from repro.signatures.matcher import SignatureMatcher


def cpu_count() -> int:
    """Usable CPU count (affinity-aware on Linux).

    Shared by the perf and serving benches so their reports agree on what
    hardware a number was produced on.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True, slots=True)
class PerfBudget:
    """Floors the bench enforces (``None`` disables a gate).

    :param min_parallel_speedup: required parallel-over-serial matrix
        speedup — enforced only when the host has at least as many CPUs
        as the bench used workers (a one-core box cannot show fan-out).
    :param min_engine_speedup: required engine-over-naive serial speedup
        (the caching/decomposition win; hardware-independent).
    :param min_pair_hit_rate: required component-cache hit rate.
    :param max_matrix_seconds: wall-clock ceiling on the parallel build.
    """

    min_parallel_speedup: float | None = 2.0
    min_engine_speedup: float | None = 1.5
    min_pair_hit_rate: float | None = 0.5
    max_matrix_seconds: float | None = None

    def violations(self, report: "PerfReport") -> list[str]:
        """Which gates the report fails (identity is always enforced)."""
        found: list[str] = []
        if not report.identical:
            found.append("parallel matrix diverges from serial matrix")
        if (
            self.min_parallel_speedup is not None
            and report.cpu_count >= report.workers
            and report.parallel_speedup < self.min_parallel_speedup
        ):
            found.append(
                f"parallel speedup {report.parallel_speedup:.2f}x "
                f"< {self.min_parallel_speedup:.2f}x"
            )
        if (
            self.min_engine_speedup is not None
            and report.engine_speedup < self.min_engine_speedup
        ):
            found.append(
                f"engine speedup {report.engine_speedup:.2f}x "
                f"< {self.min_engine_speedup:.2f}x"
            )
        if self.min_pair_hit_rate is not None:
            hit_rate = report.engine_stats.get("pair_hit_rate", 0.0)
            if hit_rate < self.min_pair_hit_rate:
                found.append(
                    f"pair-cache hit rate {hit_rate:.2f} < {self.min_pair_hit_rate:.2f}"
                )
        if (
            self.max_matrix_seconds is not None
            and report.matrix_parallel_s > self.max_matrix_seconds
        ):
            found.append(
                f"parallel matrix {report.matrix_parallel_s:.2f}s "
                f"> {self.max_matrix_seconds:.2f}s budget"
            )
        return found

    def to_dict(self) -> dict:
        return {
            "min_parallel_speedup": self.min_parallel_speedup,
            "min_engine_speedup": self.min_engine_speedup,
            "min_pair_hit_rate": self.min_pair_hit_rate,
            "max_matrix_seconds": self.max_matrix_seconds,
        }


@dataclass(slots=True)
class PerfReport:
    """One bench run, ready for ``BENCH_perf.json``."""

    n_apps: int
    m: int
    n_pairs: int
    workers: int
    cpu_count: int
    seed: int
    matrix_naive_s: float
    matrix_serial_s: float
    matrix_parallel_s: float
    linkage_s: float
    screen_s: float
    screened_packets: int
    n_signatures: int
    identical: bool
    engine_stats: dict = field(default_factory=dict)
    parallel_stats: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    cache_counters: dict = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    budget: dict = field(default_factory=dict)

    @property
    def parallel_speedup(self) -> float:
        """Engine-serial over engine-parallel wall clock."""
        return self.matrix_serial_s / self.matrix_parallel_s if self.matrix_parallel_s else 0.0

    @property
    def engine_speedup(self) -> float:
        """Legacy serial loop over engine-serial wall clock."""
        return self.matrix_naive_s / self.matrix_serial_s if self.matrix_serial_s else 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "bench": "perf",
            "corpus": {"n_apps": self.n_apps, "seed": self.seed},
            "m": self.m,
            "n_pairs": self.n_pairs,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "timings_s": {
                "matrix_naive": round(self.matrix_naive_s, 4),
                "matrix_serial": round(self.matrix_serial_s, 4),
                "matrix_parallel": round(self.matrix_parallel_s, 4),
                "linkage": round(self.linkage_s, 4),
                "screen": round(self.screen_s, 4),
            },
            "throughput": {
                "pairs_per_s_serial": round(self.n_pairs / self.matrix_serial_s)
                if self.matrix_serial_s
                else 0,
                "pairs_per_s_parallel": round(self.n_pairs / self.matrix_parallel_s)
                if self.matrix_parallel_s
                else 0,
                "packets_screened_per_s": round(self.screened_packets / self.screen_s)
                if self.screen_s
                else 0,
            },
            "speedup": {
                "parallel_vs_serial": round(self.parallel_speedup, 2),
                "engine_vs_naive": round(self.engine_speedup, 2),
            },
            "identical": self.identical,
            "n_signatures": self.n_signatures,
            "stages": self.stages,
            "cache": self.engine_stats,
            "cache_parallel": self.parallel_stats,
            "cache_counters": self.cache_counters,
            "budget": self.budget,
            "violations": self.violations,
            "ok": self.ok,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def render(self) -> str:
        """Fixed-width human summary, in the repo's report style."""
        lines = [
            "Perf bench — distance engine and matcher hot paths",
            f"  corpus apps={self.n_apps} M={self.m} pairs={self.n_pairs} "
            f"workers={self.workers} cpus={self.cpu_count}",
            f"  {'stage':<18} {'seconds':>9}",
            f"  {'matrix naive':<18} {self.matrix_naive_s:>9.3f}",
            f"  {'matrix serial':<18} {self.matrix_serial_s:>9.3f}",
            f"  {'matrix parallel':<18} {self.matrix_parallel_s:>9.3f}",
            f"  {'linkage':<18} {self.linkage_s:>9.3f}",
            f"  {'screen':<18} {self.screen_s:>9.3f}",
            f"  engine vs naive : {self.engine_speedup:.2f}x",
            f"  parallel speedup: {self.parallel_speedup:.2f}x "
            f"({'hardware-gated' if self.cpu_count < self.workers else 'enforced'})",
            f"  pair-cache hit rate: {self.engine_stats.get('pair_hit_rate', 0.0):.2%}",
            f"  matrices identical : {self.identical}",
        ]
        if self.violations:
            lines.append("  BUDGET VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  budget: ok")
        return "\n".join(lines)


def run_perf_bench(
    *,
    n_apps: int = 300,
    sample: int = 200,
    workers: int = 4,
    seed: int = 7,
    screen_packets: int = 4000,
    budget: PerfBudget | None = None,
) -> PerfReport:
    """Time the pipeline hot paths on a synthetic corpus.

    Deterministic for a given ``(n_apps, sample, seed)``: the same packets
    are sampled and the same signatures generated on every run (timings,
    of course, vary with the host).
    """
    # Local import: corpus simulation sits above eval in some layerings.
    from repro.simulation.corpus import build_corpus

    budget = budget or PerfBudget()
    corpus = build_corpus(n_apps=n_apps, seed=seed)
    suspicious, __ = corpus.payload_check().split(corpus.trace)
    packets = suspicious[: min(sample, len(suspicious))]
    m = len(packets)

    # The bench doubles as the observability demo for timed stages: a
    # wall-clock tracer wraps each section so BENCH_perf.json carries a
    # ``stages`` rollup (tick + wall totals) next to the raw timings.
    obs = Observability.create(
        seed=seed,
        config={"bench": "perf", "n_apps": n_apps, "sample": sample, "workers": workers},
        wall_clock=True,
    )
    n_pairs = m * (m - 1) // 2

    clock = time.perf_counter
    with obs.span("matrix_naive", track="bench", n_pairs=n_pairs):
        t0 = clock()
        naive = distance_matrix(packets, PacketDistance.paper())
        matrix_naive_s = clock() - t0
        obs.advance(n_pairs)

    serial_engine = DistanceEngine(PacketDistance.paper(), workers=1, obs=obs)
    with obs.span("matrix_serial", track="bench", n_pairs=n_pairs):
        t0 = clock()
        serial = serial_engine.matrix(packets)
        matrix_serial_s = clock() - t0

    parallel_engine = DistanceEngine(PacketDistance.paper(), workers=workers, obs=obs)
    with obs.span("matrix_parallel", track="bench", n_pairs=n_pairs):
        t0 = clock()
        parallel = parallel_engine.matrix(packets)
        matrix_parallel_s = clock() - t0

    identical = bool(
        np.array_equal(naive.values, serial.values)
        and np.array_equal(serial.values, parallel.values)
    )

    with obs.span("linkage", track="bench", n_items=m):
        t0 = clock()
        dendrogram = agglomerate(serial, Linkage.GROUP_AVERAGE)
        linkage_s = clock() - t0
        obs.advance(max(0, m - 1))

    signatures = SignatureGenerator(GeneratorConfig()).from_dendrogram(dendrogram, packets)
    matcher = SignatureMatcher(signatures)
    screened = corpus.trace.packets[: min(screen_packets, len(corpus.trace))]
    with obs.span("screen", track="bench", n_packets=len(screened)):
        t0 = clock()
        matcher.screen(screened)
        screen_s = clock() - t0
        obs.advance(len(screened))

    report = PerfReport(
        n_apps=n_apps,
        m=m,
        n_pairs=n_pairs,
        workers=workers,
        cpu_count=cpu_count(),
        seed=seed,
        matrix_naive_s=matrix_naive_s,
        matrix_serial_s=matrix_serial_s,
        matrix_parallel_s=matrix_parallel_s,
        linkage_s=linkage_s,
        screen_s=screen_s,
        screened_packets=len(screened),
        n_signatures=len(signatures),
        identical=identical,
        engine_stats=serial_engine.stats.to_dict(),
        parallel_stats=parallel_engine.stats.to_dict(),
        stages=obs.profile().to_dict(),
        cache_counters={
            name: count
            for name, count in sorted(obs.metrics.counters.items())
            if name.startswith("engine_")
        },
        budget=budget.to_dict(),
    )
    report.violations = budget.violations(report)
    return report
