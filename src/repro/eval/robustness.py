"""Seed-robustness studies: are the results a property of one corpus?

The paper reports single numbers from one capture.  A reproduction can do
better: re-run an experiment across independently seeded corpora and
report the spread.  The ``seed_study`` helper does that for any metric
function; :func:`fig4_point_study` is the canned version for one Fig 4
point.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.simulation.corpus import Corpus, build_corpus


@dataclass(frozen=True, slots=True)
class StudySummary:
    """Spread of one scalar metric across seeds."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.values) if len(self.values) > 1 else 0.0

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def describe(self) -> str:
        return (
            f"{self.name}: mean {self.mean:.3f} ± {self.stdev:.3f} "
            f"(min {self.min:.3f}, max {self.max:.3f}, n={len(self.values)})"
        )


def seed_study(
    metric: Callable[[Corpus], dict[str, float]],
    *,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    n_apps: int = 120,
) -> list[StudySummary]:
    """Evaluate ``metric`` on one corpus per seed and summarize each key.

    :param metric: maps a corpus to named scalar results.
    :param seeds: corpus seeds (one corpus built per entry).
    :param n_apps: corpus scale for the study.
    """
    collected: dict[str, list[float]] = {}
    for seed in seeds:
        corpus = build_corpus(n_apps=n_apps, seed=seed)
        for name, value in metric(corpus).items():
            collected.setdefault(name, []).append(float(value))
    return [StudySummary(name=name, values=tuple(values)) for name, values in collected.items()]


def fig4_point_study(
    n_sample: int = 100,
    *,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    n_apps: int = 120,
    config: PipelineConfig | None = None,
) -> list[StudySummary]:
    """TP/FP spread of one Fig 4 point across independent corpora."""

    def metric(corpus: Corpus) -> dict[str, float]:
        pipeline = DetectionPipeline(corpus.trace, corpus.payload_check(), config)
        effective_n = min(n_sample, max(2, pipeline.n_suspicious - 10))
        result = pipeline.run(effective_n, seed=0)
        return {
            "tp_rate": result.metrics.true_positive_rate,
            "fp_rate": result.metrics.false_positive_rate,
            "n_signatures": float(len(result.signatures)),
        }

    return seed_study(metric, seeds=seeds, n_apps=n_apps)
