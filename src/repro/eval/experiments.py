"""Experiment runners: the Fig 4 detection sweep and its ablations.

The paper's evaluation (Section V): sample N suspicious packets for
signature generation with N swept from 100 to 500 in steps of 100, then
re-apply the signatures to the entire dataset and report TP/FN/FP.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.dataset.trace import Trace
from repro.sensitive.payload_check import PayloadCheck

#: The paper's sweep: "N was increased from 0 up to 500 in intervals of 100".
PAPER_SWEEP: tuple[int, ...] = (100, 200, 300, 400, 500)

#: Published Fig 4 landmarks (percentages) for shape assertions.
PAPER_FIG4: dict[int, tuple[float, float, float]] = {
    # N: (TP%, FN%, FP%)
    100: (85.0, 15.0, 0.3),
    200: (90.0, 8.0, 0.9),
    500: (94.0, 5.0, 2.3),
}


@dataclass(frozen=True, slots=True)
class Fig4Point:
    """One point of the Fig 4 series."""

    n_sample: int
    tp_percent: float
    fn_percent: float
    fp_percent: float
    n_signatures: int


def run_fig4_sweep(
    trace: Trace,
    payload_check: PayloadCheck,
    sample_sizes: tuple[int, ...] = PAPER_SWEEP,
    *,
    config: PipelineConfig | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> list[Fig4Point]:
    """The full Fig 4 experiment on one corpus.

    Sample sizes exceeding the suspicious population (possible on scaled-
    down corpora) are clamped by the pipeline; the returned points carry
    the effective N.

    :param workers: overrides the config's distance-engine worker count
        (the sweep output is bit-identical for any setting).
    """
    if workers is not None:
        config = replace(config or PipelineConfig(), workers=workers)
    pipeline = DetectionPipeline(trace, payload_check, config)
    points: list[Fig4Point] = []
    for index, n in enumerate(sample_sizes):
        result = pipeline.run(n, seed=seed + index)
        points.append(
            Fig4Point(
                n_sample=result.n_sample,
                tp_percent=result.metrics.tp_percent,
                fn_percent=result.metrics.fn_percent,
                fp_percent=result.metrics.fp_percent,
                n_signatures=len(result.signatures),
            )
        )
    return points


def scaled_sweep(n_suspicious: int, full_scale: tuple[int, ...] = PAPER_SWEEP) -> tuple[int, ...]:
    """Scale the paper's N values to a smaller corpus.

    Keeps the 100:200:...:500 proportions while leaving enough suspicious
    packets outside the sample for the TP denominator (at most 60% of the
    suspicious group is sampled).
    """
    ceiling = max(2, int(n_suspicious * 0.6))
    scale = min(1.0, ceiling / max(full_scale))
    sizes = sorted({max(2, int(round(n * scale))) for n in full_scale})
    return tuple(sizes)
