"""Held-out evaluation and learning curves.

The paper evaluates signatures against the *entire* dataset, training
sample included (with the N-corrections of Section V-B).  A modern
reviewer asks the stricter question: how do signatures do on traffic they
never saw?  This module provides:

- :func:`holdout_evaluation` — split the suspicious group, generate from
  the training part, measure recall on the held-out part and FP on all
  normal traffic;
- :func:`learning_curve` — held-out recall as a function of N, the
  honest counterpart of Fig 4's TP series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clustering.linkage import agglomerate
from repro.core.pipeline import PipelineConfig
from repro.dataset.split import holdout_split, sample_packets
from repro.distance.engine import DistanceEngine
from repro.errors import ReproError
from repro.http.packet import HttpPacket
from repro.signatures.generator import SignatureGenerator
from repro.signatures.matcher import SignatureMatcher


@dataclass(frozen=True, slots=True)
class HoldoutResult:
    """One held-out evaluation."""

    n_train: int
    n_heldout: int
    heldout_recall: float
    false_positive_rate: float
    n_signatures: int


def generate_from(
    packets: Sequence[HttpPacket], config: PipelineConfig | None = None
):
    """Cluster + generate over an explicit training sample.

    The pairwise matrix goes through the distance engine, honouring the
    config's ``workers`` knob (serial by default, bit-identical always).
    """
    config = config or PipelineConfig()
    matrix = DistanceEngine(config.distance, workers=config.workers).matrix(list(packets))
    dendrogram = agglomerate(matrix, config.linkage)
    return SignatureGenerator(config.generator).from_dendrogram(dendrogram, list(packets))


def holdout_evaluation(
    suspicious: Sequence[HttpPacket],
    normal: Sequence[HttpPacket],
    n_train: int,
    *,
    seed: int = 0,
    config: PipelineConfig | None = None,
) -> HoldoutResult:
    """Train on ``n_train`` suspicious packets, evaluate on the rest.

    :raises ReproError: when the training size leaves no held-out data.
    """
    if n_train >= len(suspicious):
        raise ReproError(
            f"n_train={n_train} leaves no held-out data from {len(suspicious)} suspicious packets"
        )
    shuffled, __ = holdout_split(suspicious, 1.0, seed=seed)
    train = shuffled[:n_train]
    heldout = shuffled[n_train:]
    signatures = generate_from(train, config)
    matcher = SignatureMatcher(signatures)
    recall = (
        sum(1 for p in heldout if matcher.is_sensitive(p)) / len(heldout) if heldout else 0.0
    )
    fp = sum(1 for p in normal if matcher.is_sensitive(p)) / len(normal) if normal else 0.0
    return HoldoutResult(
        n_train=n_train,
        n_heldout=len(heldout),
        heldout_recall=recall,
        false_positive_rate=fp,
        n_signatures=len(signatures),
    )


def learning_curve(
    suspicious: Sequence[HttpPacket],
    normal: Sequence[HttpPacket],
    train_sizes: Sequence[int],
    *,
    seed: int = 0,
    config: PipelineConfig | None = None,
) -> list[HoldoutResult]:
    """Held-out recall at each training size (same shuffle throughout)."""
    return [
        holdout_evaluation(suspicious, normal, n, seed=seed, config=config)
        for n in train_sizes
    ]


def kfold_recall(
    suspicious: Sequence[HttpPacket],
    normal: Sequence[HttpPacket],
    k: int = 5,
    *,
    seed: int = 0,
    max_train: int = 300,
    config: PipelineConfig | None = None,
) -> list[HoldoutResult]:
    """K-fold style evaluation over the suspicious group.

    Each fold is held out once; signatures are generated from (a capped
    sample of) the other folds.  Returns one result per fold.

    :raises ReproError: for ``k`` < 2 or too little data.
    """
    if k < 2:
        raise ReproError("k must be at least 2")
    if len(suspicious) < 2 * k:
        raise ReproError(f"too few suspicious packets ({len(suspicious)}) for {k} folds")
    shuffled, __ = holdout_split(suspicious, 1.0, seed=seed)
    folds = [shuffled[i::k] for i in range(k)]
    results = []
    for i, heldout in enumerate(folds):
        train_pool = [p for j, fold in enumerate(folds) if j != i for p in fold]
        train = sample_packets(train_pool, min(max_train, len(train_pool)), seed=seed + i)
        signatures = generate_from(train, config)
        matcher = SignatureMatcher(signatures)
        recall = sum(1 for p in heldout if matcher.is_sensitive(p)) / len(heldout)
        fp = sum(1 for p in normal if matcher.is_sensitive(p)) / len(normal) if normal else 0.0
        results.append(
            HoldoutResult(
                n_train=len(train),
                n_heldout=len(heldout),
                heldout_recall=recall,
                false_positive_rate=fp,
                n_signatures=len(signatures),
            )
        )
    return results
