"""Streaming bench + exactness audit — the O(M²)-wall evidence.

``BENCH_perf.json`` (PR 2) made the full matrix build fast at M=200;
this bench shows the *streaming* pipeline absorbing a corpus ≥10× that
size while the per-packet extension cost stays flat.  It drives a
:class:`~repro.core.streaming.StreamingClusterer` through a base load
plus a long run of extension batches, accounting attach and compaction
pair evaluations separately per batch, then runs the **exactness
audit**: a full recluster (complete matrix, agglomerate, threshold cut)
over everything the stream saw, compared cluster-for-cluster against
the streamed partition.

The perf gates are counting-based, not wall-clock-based, so they hold
on any hardware and stay meaningful in CI containers:

- ``attach_tail_ratio`` — per-item attach pairs in the last batch over
  the first extension batch.  Flat attach cost ⇒ ratio ≈ 1; a linear
  cost would grow with M (~8× over this bench's range).
- ``attach_tail_fraction`` — per-item attach pairs in the last batch
  over the population size M at that point.  A naive incremental
  extension evaluates M pairs per item (fraction 1.0); blocked attach
  probes a capped set of cluster exemplars (fraction ≪ 1).
- ``pair_fraction`` — all pairs ever evaluated (attach + compaction)
  over the full M(M-1)/2 space a batch recluster would need.

The audit gate: in ``BlockingMode.EXACT`` the streamed partition must
be **identical** to the full recluster (the blocking losslessness proof
made operational); any mode must clear a pairwise-agreement F1 floor.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.clustering.cut import cut_by_height
from repro.clustering.linkage import Linkage, agglomerate
from repro.core.streaming import StreamingClusterer, StreamingConfig
from repro.distance.blocking import BlockingConfig, BlockingMode, assign_blocks
from repro.distance.engine import DistanceEngine
from repro.distance.packet import PacketDistance
from repro.eval.perf import cpu_count
from repro.obs import Observability
from repro.signatures.generator import GeneratorConfig, SignatureGenerator
from repro.signatures.store import SignatureStore


def partition_agreement(
    ours: list[list[int]], reference: list[list[int]], n_items: int
) -> dict:
    """Pairwise co-membership agreement between two partitions.

    Counting-based (contingency cells, no materialized pair sets), so it
    stays cheap at M in the thousands.  Precision/recall are over
    same-cluster pairs with ``reference`` as truth; ``rand_index`` is
    the fraction of all pairs both partitions treat the same way.
    """
    label_ours: dict[int, int] = {}
    for cluster_id, members in enumerate(ours):
        for member in members:
            label_ours[member] = cluster_id
    label_ref: dict[int, int] = {}
    for cluster_id, members in enumerate(reference):
        for member in members:
            label_ref[member] = cluster_id

    def same_pairs(counts: Counter) -> int:
        return sum(count * (count - 1) // 2 for count in counts.values())

    ours_sizes = Counter(label_ours.values())
    ref_sizes = Counter(label_ref.values())
    joint = Counter(
        (label_ours[item], label_ref[item]) for item in range(n_items)
    )
    same_ours = same_pairs(ours_sizes)
    same_ref = same_pairs(ref_sizes)
    same_both = same_pairs(joint)
    total = n_items * (n_items - 1) // 2
    precision = same_both / same_ours if same_ours else 1.0
    recall = same_both / same_ref if same_ref else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    agree = same_both + (total - same_ours - same_ref + same_both)
    canonical_ours = sorted(tuple(sorted(c)) for c in ours)
    canonical_ref = sorted(tuple(sorted(c)) for c in reference)
    return {
        "identical": canonical_ours == canonical_ref,
        "precision": round(precision, 6),
        "recall": round(recall, 6),
        "f1": round(f1, 6),
        "rand_index": round(agree / total, 6) if total else 1.0,
        "n_clusters_stream": len(ours),
        "n_clusters_full": len(reference),
    }


@dataclass(frozen=True, slots=True)
class StreamingBudget:
    """Gates for the streaming bench (``None`` disables one).

    All perf gates count pair evaluations rather than seconds, so they
    are deterministic for a seed and hardware-independent.
    """

    min_scale: float | None = 10.0
    max_attach_tail_ratio: float | None = 2.0
    max_attach_tail_fraction: float | None = 0.25
    max_pair_fraction: float | None = 0.6
    min_agreement_f1: float | None = 0.97
    require_exact_identity: bool = True

    def violations(self, report: "StreamingReport") -> list[str]:
        found: list[str] = []
        audit = report.audit
        if (
            self.require_exact_identity
            and report.mode == BlockingMode.EXACT.value
            and not audit.get("identical", False)
        ):
            found.append(
                "exact-mode streamed partition diverges from full recluster"
            )
        if not audit.get("signatures_identical", False) and report.mode == BlockingMode.EXACT.value:
            found.append(
                "exact-mode streamed signatures diverge from full recluster"
            )
        if (
            self.min_agreement_f1 is not None
            and audit.get("f1", 0.0) < self.min_agreement_f1
        ):
            found.append(
                f"partition agreement F1 {audit.get('f1', 0.0):.4f} "
                f"< {self.min_agreement_f1:.4f}"
            )
        if self.min_scale is not None and report.scale < self.min_scale:
            found.append(
                f"corpus scale {report.scale:.1f}x < {self.min_scale:.1f}x "
                f"over baseline M={report.baseline_m}"
            )
        if (
            self.max_attach_tail_ratio is not None
            and report.attach_tail_ratio > self.max_attach_tail_ratio
        ):
            found.append(
                f"attach cost grew {report.attach_tail_ratio:.2f}x tail/head "
                f"> {self.max_attach_tail_ratio:.2f}x (not sub-linear)"
            )
        if (
            self.max_attach_tail_fraction is not None
            and report.attach_tail_fraction > self.max_attach_tail_fraction
        ):
            found.append(
                f"tail attach pairs/item are {report.attach_tail_fraction:.2f} "
                f"of M > {self.max_attach_tail_fraction:.2f} (near-linear probe cost)"
            )
        if (
            self.max_pair_fraction is not None
            and report.pair_fraction > self.max_pair_fraction
        ):
            found.append(
                f"evaluated {report.pair_fraction:.2f} of the full pair space "
                f"> {self.max_pair_fraction:.2f}"
            )
        return found

    def to_dict(self) -> dict:
        return {
            "min_scale": self.min_scale,
            "max_attach_tail_ratio": self.max_attach_tail_ratio,
            "max_attach_tail_fraction": self.max_attach_tail_fraction,
            "max_pair_fraction": self.max_pair_fraction,
            "min_agreement_f1": self.min_agreement_f1,
            "require_exact_identity": self.require_exact_identity,
        }


@dataclass(slots=True)
class StreamingReport:
    """One streaming bench run, ready for ``BENCH_streaming.json``."""

    n_apps: int
    seed: int
    mode: str
    threshold: float
    linkage: str
    baseline_m: int
    m_total: int
    base: int
    batch_size: int
    n_batches: int
    compact_every: int
    workers: int
    cpu_count: int
    stream_total_s: float
    full_recluster_s: float
    batches: list[dict] = field(default_factory=list)
    blocking: dict = field(default_factory=dict)
    streaming_stats: dict = field(default_factory=dict)
    audit: dict = field(default_factory=dict)
    budget: dict = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def scale(self) -> float:
        """Corpus growth over the perf bench's baseline M."""
        return self.m_total / self.baseline_m if self.baseline_m else 0.0

    @property
    def full_pairs(self) -> int:
        return self.m_total * (self.m_total - 1) // 2

    @property
    def pairs_evaluated(self) -> int:
        return int(self.streaming_stats.get("pairs_evaluated", 0))

    @property
    def pair_fraction(self) -> float:
        return self.pairs_evaluated / self.full_pairs if self.full_pairs else 0.0

    @property
    def naive_recompute_pairs(self) -> int:
        """Pairs a recluster-from-scratch-per-batch strategy would cost."""
        total = 0
        for batch in self.batches:
            m_after = batch["m_after"]
            total += m_after * (m_after - 1) // 2
        return total

    def _extension_batches(self) -> list[dict]:
        return [b for b in self.batches if b["batch"] > 0]

    @property
    def attach_head_per_item(self) -> float:
        ext = self._extension_batches()
        if not ext or not ext[0]["batch_size"]:
            return 0.0
        return ext[0]["attach_pairs"] / ext[0]["batch_size"]

    @property
    def attach_tail_per_item(self) -> float:
        ext = self._extension_batches()
        if not ext or not ext[-1]["batch_size"]:
            return 0.0
        return ext[-1]["attach_pairs"] / ext[-1]["batch_size"]

    @property
    def attach_tail_ratio(self) -> float:
        """Per-item attach cost growth, last extension batch vs first."""
        head = self.attach_head_per_item
        return self.attach_tail_per_item / head if head else 0.0

    @property
    def attach_tail_fraction(self) -> float:
        """Tail per-item attach pairs relative to the population then."""
        ext = self._extension_batches()
        if not ext or not ext[-1]["m_before"]:
            return 0.0
        return self.attach_tail_per_item / ext[-1]["m_before"]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "bench": "streaming",
            "corpus": {"n_apps": self.n_apps, "seed": self.seed},
            "mode": self.mode,
            "threshold": self.threshold,
            "linkage": self.linkage,
            "baseline_m": self.baseline_m,
            "m_total": self.m_total,
            "scale": round(self.scale, 2),
            "base": self.base,
            "batch_size": self.batch_size,
            "n_batches": self.n_batches,
            "compact_every": self.compact_every,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "timings_s": {
                "stream_total": round(self.stream_total_s, 4),
                "full_recluster": round(self.full_recluster_s, 4),
            },
            "recompute": {
                "pairs_evaluated": self.pairs_evaluated,
                "full_pairs": self.full_pairs,
                "pair_fraction": round(self.pair_fraction, 4),
                "naive_recompute_pairs": self.naive_recompute_pairs,
                "naive_ratio": round(
                    self.pairs_evaluated / self.naive_recompute_pairs, 4
                )
                if self.naive_recompute_pairs
                else 0.0,
                "attach_head_per_item": round(self.attach_head_per_item, 2),
                "attach_tail_per_item": round(self.attach_tail_per_item, 2),
                "attach_tail_ratio": round(self.attach_tail_ratio, 4),
                "attach_tail_fraction": round(self.attach_tail_fraction, 4),
            },
            "batches": self.batches,
            "blocking": self.blocking,
            "streaming_stats": self.streaming_stats,
            "audit": self.audit,
            "identical": bool(self.audit.get("identical", False)),
            "budget": self.budget,
            "violations": self.violations,
            "ok": self.ok,
        }

    def audit_dict(self) -> dict:
        """The audit alone, for the standalone CI artifact."""
        return {
            "bench": "streaming_audit",
            "corpus": {"n_apps": self.n_apps, "seed": self.seed},
            "mode": self.mode,
            "threshold": self.threshold,
            "m_total": self.m_total,
            "audit": self.audit,
            "identical": bool(self.audit.get("identical", False)),
            "ok": self.ok,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def save_audit(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.audit_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    def render(self) -> str:
        """Fixed-width human summary, in the repo's report style."""
        lines = [
            "Streaming bench — blocked attach + dirty-block compaction",
            f"  corpus apps={self.n_apps} M={self.m_total} "
            f"({self.scale:.1f}x baseline M={self.baseline_m}) "
            f"mode={self.mode} threshold={self.threshold}",
            f"  batches base={self.base} +{self.n_batches}x{self.batch_size} "
            f"compact_every={self.compact_every} workers={self.workers} "
            f"cpus={self.cpu_count}",
            f"  pairs evaluated : {self.pairs_evaluated} "
            f"({self.pair_fraction:.1%} of full {self.full_pairs}; "
            f"{self.pairs_evaluated / max(1, self.naive_recompute_pairs):.1%} "
            "of naive per-batch recompute)",
            f"  attach pairs/item: head {self.attach_head_per_item:.1f} "
            f"-> tail {self.attach_tail_per_item:.1f} "
            f"(ratio {self.attach_tail_ratio:.2f}, "
            f"{self.attach_tail_fraction:.1%} of M)",
            f"  wall clock      : stream {self.stream_total_s:.2f}s, "
            f"full recluster {self.full_recluster_s:.2f}s",
            f"  audit           : identical={self.audit.get('identical')} "
            f"signatures_identical={self.audit.get('signatures_identical')} "
            f"f1={self.audit.get('f1'):.4f} "
            f"clusters {self.audit.get('n_clusters_stream')}/"
            f"{self.audit.get('n_clusters_full')}",
        ]
        if self.violations:
            lines.append("  BUDGET VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  budget: ok")
        return "\n".join(lines)


def run_streaming_bench(
    *,
    n_apps: int = 300,
    base: int = 256,
    batch_size: int = 128,
    batches: int = 14,
    threshold: float = 1.2,
    mode: BlockingMode = BlockingMode.EXACT,
    compact_every: int = 4,
    workers: int = 1,
    seed: int = 7,
    baseline_m: int = 200,
    budget: StreamingBudget | None = None,
    obs: Observability | None = None,
) -> StreamingReport:
    """Stream ``base + batches x batch_size`` packets, then audit exactly.

    Deterministic for a ``(n_apps, seed)``: the same packets stream in
    the same order on every run, so pair counts — everything the budget
    gates on — are reproducible anywhere.
    """
    from repro.simulation.corpus import build_corpus

    budget = budget or StreamingBudget()
    corpus = build_corpus(n_apps=n_apps, seed=seed)
    suspicious, __ = corpus.payload_check().split(corpus.trace)
    m_total = base + batch_size * batches
    if len(suspicious) < m_total:
        raise ValueError(
            f"corpus has {len(suspicious)} suspicious packets, "
            f"need {m_total}; raise n_apps"
        )
    packets = suspicious[:m_total]

    blocking = BlockingConfig(mode=mode, threshold=threshold)
    config = StreamingConfig(blocking=blocking, compact_every=compact_every)
    metric = PacketDistance.paper()
    clusterer = StreamingClusterer(
        metric,
        config,
        engine=DistanceEngine(metric, workers=workers),
        obs=obs,
    )

    clock = time.perf_counter
    batch_rows: list[dict] = []
    stream_t0 = clock()
    tranches = [packets[:base]] + [
        packets[base + i * batch_size : base + (i + 1) * batch_size]
        for i in range(batches)
    ]
    for number, tranche in enumerate(tranches):
        m_before = len(clusterer)
        attach_before = clusterer.stats.attach_pairs_evaluated
        compact_before = clusterer.stats.compact_pairs_evaluated
        t0 = clock()
        batch_report = clusterer.ingest(tranche)
        batch_rows.append(
            {
                "batch": number,
                "batch_size": len(tranche),
                "m_before": m_before,
                "m_after": len(clusterer),
                "attach_pairs": clusterer.stats.attach_pairs_evaluated - attach_before,
                "compact_pairs": clusterer.stats.compact_pairs_evaluated - compact_before,
                "attached": batch_report.attached,
                "new_clusters": batch_report.new_clusters,
                "blocks_merged": batch_report.blocks_merged,
                "compacted": batch_report.compacted,
                "seconds": round(clock() - t0, 4),
            }
        )
    clusterer.compact(full=True)
    stream_total_s = clock() - stream_t0
    stream_partition = clusterer.partition()

    # The audit arm: a full recluster over everything the stream saw.
    t0 = clock()
    full_matrix = DistanceEngine(metric, workers=workers).matrix(packets)
    dendrogram = agglomerate(full_matrix, config.linkage)
    full_partition = sorted(
        (sorted(dendrogram.leaves(node)) for node in cut_by_height(dendrogram, threshold)),
        key=lambda cluster: cluster[0],
    )
    full_recluster_s = clock() - t0

    audit = partition_agreement(stream_partition, full_partition, m_total)
    generator = SignatureGenerator(GeneratorConfig(cut_height=threshold))
    stream_signatures = generator.from_clusters(
        [[packets[i] for i in cluster] for cluster in stream_partition]
    )
    full_signatures = generator.from_clusters(
        [[packets[i] for i in cluster] for cluster in full_partition]
    )
    audit["signatures_identical"] = SignatureStore.dumps(
        stream_signatures
    ) == SignatureStore.dumps(full_signatures)
    audit["n_signatures"] = len(stream_signatures)

    assignment = assign_blocks(packets, metric, blocking)
    report = StreamingReport(
        n_apps=n_apps,
        seed=seed,
        mode=mode.value,
        threshold=threshold,
        linkage=config.linkage.value,
        baseline_m=baseline_m,
        m_total=m_total,
        base=base,
        batch_size=batch_size,
        n_batches=batches,
        compact_every=compact_every,
        workers=workers,
        cpu_count=cpu_count(),
        stream_total_s=stream_total_s,
        full_recluster_s=full_recluster_s,
        batches=batch_rows,
        blocking=assignment.stats.to_dict() | blocking.to_dict(),
        streaming_stats=clusterer.stats.to_dict(),
        audit=audit,
        budget=budget.to_dict(),
    )
    report.violations = budget.violations(report)
    return report
