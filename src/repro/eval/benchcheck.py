"""Schema validation for committed ``BENCH_*.json`` reports.

The repo commits one machine-readable report per bench family
(``BENCH_perf.json``, ``BENCH_serving.json``, ``BENCH_federation.json``,
``BENCH_streaming.json``, ``BENCH_service.json``, ``BENCH_arena.json``)
as the perf trajectory of record.  Nothing
stops a refactor from silently changing a report's shape — or from
committing a report whose own gates failed — so the lint job runs this
check over every committed report: fields the CI assertions and the
README's interpretation guides rely on must be present, and the
truth-flags (``ok``, and ``identical`` where the bench carries an
equivalence proof) must actually be true.

Deliberately **stdlib-only**: the lint job installs ruff and nothing
else, so ``scripts/check_bench_drift.py`` loads this module straight
from its file path without importing the ``repro`` package (which pulls
in numpy at ``__init__`` time).
"""

from __future__ import annotations

import json
from pathlib import Path

#: Top-level fields each bench family must carry.  These are the keys CI
#: assertions, the README, and downstream tooling read — dropping one is
#: schema drift even when the bench still "works".
REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "perf": (
        "bench", "corpus", "m", "n_pairs", "workers", "cpu_count",
        "timings_s", "throughput", "speedup", "identical", "n_signatures",
        "budget", "violations", "ok",
    ),
    "serving": (
        "bench", "corpus", "cpu_count", "gateway", "n_events",
        "n_signatures", "scenarios", "budget", "violations", "ok",
    ),
    "federation": (
        "bench", "corpus", "cpu_count", "arms", "fault_rate",
        "min_support", "budget", "violations", "ok",
    ),
    "streaming": (
        "bench", "corpus", "mode", "threshold", "baseline_m", "m_total",
        "scale", "batches", "recompute", "blocking", "streaming_stats",
        "audit", "identical", "budget", "violations", "ok",
    ),
    "streaming_audit": (
        "bench", "corpus", "mode", "threshold", "m_total", "audit",
        "identical", "ok",
    ),
    "service": (
        "bench", "corpus", "cpu_count", "server", "workload", "n_clients",
        "n_requests", "requests", "status_counts", "error_rate", "n_5xx",
        "latency_ms", "screen", "republication", "checks", "gateway",
        "slo", "tracing", "identical", "budget", "violations", "ok",
    ),
    "slo": (
        "bench", "objectives", "page_alerts", "ticket_alerts", "ok",
    ),
    "arena": (
        "bench", "corpus", "seed", "rounds", "epsilon", "threshold",
        "traffic", "workers", "cpu_count", "boot", "families",
        "ground_truth_intact", "recovered", "budget", "violations", "ok",
    ),
}

#: Flags that must be literally ``True`` in a committed report — a report
#: that fails its own gates (or lost its equivalence proof) must never be
#: checked in as the trajectory of record.
TRUE_FLAGS: dict[str, tuple[str, ...]] = {
    "perf": ("identical", "ok"),
    "serving": ("ok",),
    "federation": ("ok",),
    "streaming": ("identical", "ok"),
    "streaming_audit": ("identical", "ok"),
    "service": ("identical", "ok"),
    "slo": ("ok",),
    "arena": ("ground_truth_intact", "recovered", "ok"),
}


def check_slo_section(section: object) -> list[str]:
    """Problems with one SLO report section (nested or standalone).

    A committed report must show every objective inside its error budget
    and zero page-severity burn alerts — an SLO section that records its
    own violation is a failed gate, not a trajectory of record.
    """
    problems: list[str] = []
    if not isinstance(section, dict):
        return [f"slo section is {type(section).__name__}, expected an object"]
    objectives = section.get("objectives")
    if not isinstance(objectives, dict) or not objectives:
        problems.append("slo section carries no objectives")
    else:
        for name in sorted(objectives):
            objective = objectives[name]
            if not isinstance(objective, dict):
                problems.append(f"slo objective {name!r} is not an object")
                continue
            for key in ("kind", "target", "compliance", "budget", "alerts", "ok"):
                if key not in objective:
                    problems.append(f"slo objective {name!r} missing {key!r}")
            if objective.get("ok") is not True:
                problems.append(f"slo objective {name!r} is not ok")
    if section.get("page_alerts") != 0:
        problems.append(
            f"slo section carries {section.get('page_alerts')!r} page-severity burn alerts"
        )
    if section.get("ok") is not True:
        problems.append(f"slo verdict 'ok' is {section.get('ok')!r}, must be true")
    return problems


def check_report(payload: object) -> list[str]:
    """Problems with one parsed report; empty when it is schema-valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"report is {type(payload).__name__}, expected an object"]
    bench = payload.get("bench")
    if not isinstance(bench, str):
        return ["missing or non-string 'bench' discriminator field"]
    required = REQUIRED_FIELDS.get(bench)
    if required is None:
        return [
            f"unknown bench family {bench!r} "
            f"(known: {', '.join(sorted(REQUIRED_FIELDS))})"
        ]
    for name in required:
        if name not in payload:
            problems.append(f"missing required field {name!r}")
    for name in TRUE_FLAGS[bench]:
        if name in payload and payload[name] is not True:
            problems.append(f"flag {name!r} is {payload[name]!r}, must be true")
    if bench == "slo":
        problems.extend(check_slo_section(payload))
    elif bench == "service" and "slo" in payload:
        problems.extend(check_slo_section(payload["slo"]))
    violations = payload.get("violations")
    if isinstance(violations, list) and violations:
        problems.append(f"report carries budget violations: {violations}")
    return problems


def check_file(path: str | Path) -> list[str]:
    """Problems with one report file (parse errors included)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    return check_report(payload)


def check_tree(root: str | Path) -> dict[str, list[str]]:
    """Check every ``BENCH_*.json`` directly under ``root``.

    :returns: file name -> problems (empty list = clean).  An empty
        mapping means no bench reports were found at all, which callers
        should treat as its own failure — silently checking nothing is
        how drift checks rot.
    """
    root = Path(root)
    return {
        path.name: check_file(path)
        for path in sorted(root.glob("BENCH_*.json"))
    }
