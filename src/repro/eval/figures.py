"""Plot-ready data export for every figure.

The library keeps its core plotting-free (no matplotlib dependency), but
each figure's series can be exported as CSV so any plotting tool can
regenerate the paper's visuals.  The CSV column layouts are stable and
covered by tests.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from repro.dataset.stats import fanout_cdf
from repro.dataset.trace import Trace
from repro.eval.crossval import HoldoutResult
from repro.eval.experiments import Fig4Point


def fig2_series(trace: Trace) -> list[dict[str, float]]:
    """The Fig 2 CDF as rows: destination threshold -> fraction of apps."""
    return [
        {"destinations": threshold, "fraction_of_apps": fraction}
        for threshold, fraction in fanout_cdf(trace)
    ]


def fig4_series(points: Sequence[Fig4Point]) -> list[dict[str, float]]:
    """The Fig 4 series as rows: N -> TP/FN/FP percent."""
    return [
        {
            "n_sample": point.n_sample,
            "tp_percent": point.tp_percent,
            "fn_percent": point.fn_percent,
            "fp_percent": point.fp_percent,
            "n_signatures": point.n_signatures,
        }
        for point in points
    ]


def learning_curve_series(results: Sequence[HoldoutResult]) -> list[dict[str, float]]:
    """The held-out learning curve as rows."""
    return [
        {
            "n_train": result.n_train,
            "heldout_recall": result.heldout_recall,
            "false_positive_rate": result.false_positive_rate,
            "n_signatures": result.n_signatures,
        }
        for result in results
    ]


def to_csv(rows: Sequence[dict[str, float]]) -> str:
    """Render rows as CSV text (stable column order from the first row).

    Empty input yields an empty string.
    """
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def save_csv(rows: Sequence[dict[str, float]], path: str | Path) -> None:
    """Write rows to a CSV file."""
    Path(path).write_text(to_csv(rows), encoding="utf-8")
