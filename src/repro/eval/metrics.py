"""Detection metrics, exactly per the paper's Section V-B equations.

With S = the number of sensitive packets in the dataset, B = the number of
non-sensitive packets, N = the signature-generation sample size, D_s = the
number of *detected* sensitive packets and D_b = the number of detected
non-sensitive packets:

    TP = (D_s - N) / (S - N)
    FN = (S - D_s) / (S - N)
    FP =  D_b      / (B - N)

Notes on fidelity: the paper subtracts N from the true-positive numerator
and from every denominator — the training packets are excluded from credit
(they are matched by construction), and the paper applies the same N
correction to the FP denominator even though the sample is drawn from the
suspicious group; we reproduce that literally.  ``TP + FN = 1`` by
construction whenever all N training packets are re-detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError
from repro.http.packet import HttpPacket
from repro.signatures.matcher import SignatureMatcher


@dataclass(frozen=True, slots=True)
class DetectionMetrics:
    """One evaluation's outcome.

    Rates are fractions in ``[0, 1]``; the paper reports them as
    percentages.
    """

    n_sample: int
    n_suspicious: int
    n_normal: int
    detected_sensitive: int
    detected_normal: int
    true_positive_rate: float
    false_negative_rate: float
    false_positive_rate: float

    @property
    def tp_percent(self) -> float:
        return 100.0 * self.true_positive_rate

    @property
    def fn_percent(self) -> float:
        return 100.0 * self.false_negative_rate

    @property
    def fp_percent(self) -> float:
        return 100.0 * self.false_positive_rate


def compute_metrics(
    matcher: SignatureMatcher,
    suspicious: Sequence[HttpPacket],
    normal: Sequence[HttpPacket],
    n_sample: int,
    training_sample: Sequence[HttpPacket] | None = None,
) -> DetectionMetrics:
    """Screen both groups and evaluate the paper's three rates.

    :param matcher: the signature matcher under evaluation.
    :param suspicious: all sensitive packets in the dataset (the training
        sample included, as in the paper's "applied the generated
        signatures to the dataset in its entirety").
    :param normal: all non-sensitive packets.
    :param n_sample: N.
    :param training_sample: unused by the equations (kept for audits: the
        caller can verify every training packet is re-detected).
    :raises ReproError: when the denominators are non-positive.
    """
    n_suspicious = len(suspicious)
    n_normal = len(normal)
    if n_suspicious - n_sample <= 0:
        raise ReproError(
            f"need more sensitive packets ({n_suspicious}) than the sample size ({n_sample})"
        )
    if n_normal - n_sample <= 0:
        raise ReproError(
            f"need more normal packets ({n_normal}) than the sample size ({n_sample})"
        )
    detected_sensitive = sum(1 for packet in suspicious if matcher.is_sensitive(packet))
    detected_normal = sum(1 for packet in normal if matcher.is_sensitive(packet))

    tp = (detected_sensitive - n_sample) / (n_suspicious - n_sample)
    fn = (n_suspicious - detected_sensitive) / (n_suspicious - n_sample)
    fp = detected_normal / (n_normal - n_sample)
    return DetectionMetrics(
        n_sample=n_sample,
        n_suspicious=n_suspicious,
        n_normal=n_normal,
        detected_sensitive=detected_sensitive,
        detected_normal=detected_normal,
        true_positive_rate=max(0.0, min(1.0, tp)),
        false_negative_rate=max(0.0, min(1.0, fn)),
        false_positive_rate=max(0.0, min(1.0, fp)),
    )
