"""Text rendering of the paper's tables and figures.

Each renderer takes the data rows produced by :mod:`repro.dataset.stats`
or :mod:`repro.eval.experiments` and prints the same rows/series the paper
reports, with the published values alongside when available.
"""

from __future__ import annotations

from repro.android.app import Application
from repro.android.permissions import table1_counts
from repro.dataset.stats import DestinationRow, FanoutSummary, SensitiveRow
from repro.eval.experiments import PAPER_FIG4, Fig4Point
from repro.simulation.corpus import PAPER_TABLE2, PAPER_TABLE3

#: Table I reference rows: (INTERNET, LOCATION, PHONE, CONTACTS) -> count.
_PAPER_TABLE1: dict[tuple[bool, bool, bool, bool], int] = {
    (True, False, False, False): 302,
    (True, True, False, False): 329,
    (True, True, True, False): 153,
    (True, False, True, False): 148,
    (True, True, True, True): 23,
}


def _flag(value: bool) -> str:
    return "x" if value else " "


def render_table1(apps: list[Application]) -> str:
    """Table I: permission-combination counts, measured vs published.

    The paper's top row counts manifests that are *strictly* ``{INTERNET}``;
    four-flag classification would also include INTERNET-plus-benign apps,
    so that row is computed separately.
    """
    from repro.android.permissions import internet_only_count

    manifests = [app.manifest for app in apps]
    counts = table1_counts(manifests)
    strict = internet_only_count(manifests)
    lines = [
        "Table I — dangerous permission combinations",
        f"{'INET':>4} {'LOC':>4} {'PHONE':>5} {'CONT':>4} {'# apps':>8} {'paper':>8}",
        f"{'x':>4} {'':>4} {'':>5} {'':>4} {strict:>8d} {302:>8}  (strict INTERNET-only)",
    ]
    keys = sorted(set(counts) | set(_PAPER_TABLE1), key=lambda k: -counts.get(k, 0))
    for key in keys:
        if key == (True, False, False, False):
            continue  # replaced by the strict row above
        internet, location, phone, contacts = key
        published = _PAPER_TABLE1.get(key)
        lines.append(
            f"{_flag(internet):>4} {_flag(location):>4} {_flag(phone):>5} "
            f"{_flag(contacts):>4} {counts.get(key, 0):>8d} "
            f"{published if published is not None else '-':>8}"
        )
    dangerous = sum(
        count for (i, l, p, c), count in counts.items() if i and (l or p or c)
    )
    total = len(apps)
    lines.append(f"dangerous combinations: {dangerous}/{total} ({100.0 * dangerous / total:.0f}%; paper: 61%)")
    return "\n".join(lines)


def render_table2(rows: list[DestinationRow], *, top: int = 26, scale: float = 1.0) -> str:
    """Table II: destination masses, measured vs published (scaled)."""
    lines = [
        "Table II — HTTP packet destinations",
        f"{'domain':<26} {'pkts':>7} {'apps':>5} {'paper pkts':>11} {'paper apps':>11}",
    ]
    for row in rows[:top]:
        published = PAPER_TABLE2.get(row.domain)
        if published:
            p_pkts, p_apps = published
            lines.append(
                f"{row.domain:<26} {row.packets:>7d} {row.apps:>5d} "
                f"{p_pkts * scale:>11.0f} {p_apps * scale:>11.0f}"
            )
        else:
            lines.append(f"{row.domain:<26} {row.packets:>7d} {row.apps:>5d} {'-':>11} {'-':>11}")
    return "\n".join(lines)


def render_table3(rows: list[SensitiveRow], *, scale: float = 1.0) -> str:
    """Table III: sensitive-information masses, measured vs published."""
    lines = [
        "Table III — sensitive information",
        f"{'identifier':<18} {'pkts':>7} {'apps':>5} {'dests':>6} {'paper pkts':>11}",
    ]
    order = {label: i for i, label in enumerate(PAPER_TABLE3)}
    for row in sorted(rows, key=lambda r: order.get(r.label, 99)):
        published = PAPER_TABLE3.get(row.label)
        paper_pkts = f"{published[0] * scale:.0f}" if published else "-"
        lines.append(
            f"{row.label:<18} {row.packets:>7d} {row.apps:>5d} {row.destinations:>6d} {paper_pkts:>11}"
        )
    return "\n".join(lines)


def render_fig2(summary: FanoutSummary, cdf: list[tuple[int, float]] | None = None) -> str:
    """Fig 2: destination fan-out landmarks (and optionally the curve)."""
    lines = [
        "Fig 2 — frequency distribution of HTTP host destinations",
        f"apps: {summary.n_apps}",
        f"mean destinations: {summary.mean:.1f} (paper: 7.9)",
        f"max destinations: {summary.max} (paper: 84)",
        f"1 destination: {100 * summary.single_fraction:.0f}% (paper: 7%)",
        f"<= 10 destinations: {100 * summary.up_to_10_fraction:.0f}% (paper: 74%)",
        f"<= 16 destinations: {100 * summary.up_to_16_fraction:.0f}% (paper: 90%)",
    ]
    if cdf:
        lines.append("CDF (destinations -> fraction of apps):")
        for threshold, fraction in cdf:
            if threshold in (1, 2, 5, 10, 16, 20, 30, 50) or threshold == cdf[-1][0]:
                bar = "#" * int(round(40 * fraction))
                lines.append(f"  {threshold:>3d} | {bar:<40} {100 * fraction:5.1f}%")
    return "\n".join(lines)


def render_fig4(points: list[Fig4Point]) -> str:
    """Fig 4: the detection-rate series, measured vs published landmarks."""
    lines = [
        "Fig 4 — detection rate of sensitive information leakage",
        f"{'N':>5} {'TP%':>7} {'FN%':>7} {'FP%':>7} {'#sigs':>6} {'paper TP/FN/FP':>18}",
    ]
    for point in points:
        published = PAPER_FIG4.get(point.n_sample)
        paper = f"{published[0]:.0f}/{published[1]:.0f}/{published[2]:.1f}" if published else "-"
        lines.append(
            f"{point.n_sample:>5d} {point.tp_percent:>7.1f} {point.fn_percent:>7.1f} "
            f"{point.fp_percent:>7.2f} {point.n_signatures:>6d} {paper:>18}"
        )
    return "\n".join(lines)
