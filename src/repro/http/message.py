"""The HTTP request message model.

A :class:`HttpRequest` is the parsed form of one GET/POST request captured
from a simulated application.  The three fields the paper's content
distance consumes are exposed directly:

- :attr:`HttpRequest.request_line` — ``"GET /path?q HTTP/1.1"``,
- :attr:`HttpRequest.cookie` — the raw ``Cookie`` header value (``""`` if
  absent),
- :attr:`HttpRequest.body` — the message body bytes (``b""`` for GET).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HttpParseError
from repro.http.url import QueryString, parse_url

#: Methods the dataset contains; the paper collected "GET/POST HTTP packets".
SUPPORTED_METHODS = ("GET", "POST", "HEAD", "PUT", "DELETE")


@dataclass(slots=True)
class HttpRequest:
    """One parsed HTTP/1.x request.

    Headers are stored as an ordered list of ``(name, value)`` pairs to keep
    the captured wire order; lookups are case-insensitive per RFC 2616.

    :param method: request method, upper-case.
    :param target: request target as sent (path + optional query).
    :param version: protocol version string, e.g. ``"HTTP/1.1"``.
    :param headers: ordered header pairs.
    :param body: message body bytes.
    """

    method: str
    target: str
    version: str = "HTTP/1.1"
    headers: list[tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    def __post_init__(self) -> None:
        method = self.method.upper()
        if method not in SUPPORTED_METHODS:
            raise HttpParseError("unsupported method", self.method)
        self.method = method
        if not self.target:
            raise HttpParseError("empty request target")

    # -- header access -----------------------------------------------------

    def header(self, name: str, default: str = "") -> str:
        """First header value matching ``name`` (case-insensitive)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return default

    def header_all(self, name: str) -> list[str]:
        wanted = name.lower()
        return [value for key, value in self.headers if key.lower() == wanted]

    def has_header(self, name: str) -> bool:
        wanted = name.lower()
        return any(key.lower() == wanted for key, __ in self.headers)

    def set_header(self, name: str, value: str) -> None:
        """Replace the first occurrence of ``name`` or append it."""
        wanted = name.lower()
        for i, (key, __) in enumerate(self.headers):
            if key.lower() == wanted:
                self.headers[i] = (key, value)
                return
        self.headers.append((name, value))

    # -- the three content fields of the paper ------------------------------

    @property
    def request_line(self) -> str:
        """``rline``: method, target and version joined by single spaces."""
        return f"{self.method} {self.target} {self.version}"

    @property
    def cookie(self) -> str:
        """``cookie``: the raw Cookie header value, empty when absent."""
        return self.header("Cookie")

    # ``body`` is a plain dataclass field.

    # -- convenience views ---------------------------------------------------

    @property
    def host(self) -> str:
        """The ``Host`` header value (authority the request was sent to)."""
        return self.header("Host")

    @property
    def path(self) -> str:
        """Path component of the target, without the query string."""
        path, __, __ = parse_url(self.target)
        return path

    @property
    def query(self) -> QueryString:
        """Parsed query parameters of the target."""
        __, raw_query, __ = parse_url(self.target)
        return QueryString.parse(raw_query)

    def form(self) -> QueryString:
        """Body parsed as ``application/x-www-form-urlencoded`` parameters.

        Returns an empty mapping for non-form bodies; ad SDKs in the corpus
        POST form-encoded payloads, JSON bodies are left to the caller.
        """
        content_type = self.header("Content-Type").lower()
        if "x-www-form-urlencoded" not in content_type:
            return QueryString([])
        return QueryString.parse(self.body.decode("utf-8", "replace"))

    def content_text(self) -> str:
        """All inspected content concatenated, for search-style matching."""
        return "\n".join(
            (self.request_line, self.cookie, self.body.decode("latin-1"))
        )

    def copy(self) -> "HttpRequest":
        """A deep-enough copy (headers list is duplicated; body is bytes)."""
        return HttpRequest(
            method=self.method,
            target=self.target,
            version=self.version,
            headers=list(self.headers),
            body=self.body,
        )
