"""Canonical wire serialization of :class:`~repro.http.message.HttpRequest`.

Serialization is the inverse of parsing up to line-ending normalization:
``parse_request(serialize_request(r))`` reproduces ``r`` field-for-field.
The canonical form is what NCD compresses and what signatures index into,
so it must be deterministic.
"""

from __future__ import annotations

from repro.http.message import HttpRequest

_CRLF = b"\r\n"


def serialize_request(request: HttpRequest, *, update_content_length: bool = True) -> bytes:
    """Render the request in canonical CRLF wire form.

    :param update_content_length: when true (default), a ``Content-Length``
        header is set to the actual body length for requests with a body,
        keeping the output self-consistent even if the model was edited.
    """
    out = request.copy() if update_content_length else request
    if update_content_length and out.body:
        out.set_header("Content-Length", str(len(out.body)))
    lines = [out.request_line.encode("latin-1")]
    lines.extend(f"{name}: {value}".encode("latin-1") for name, value in out.headers)
    head = _CRLF.join(lines)
    return head + _CRLF + _CRLF + out.body
