"""URL and query-string handling (percent-encoding, query parsing).

Implemented from scratch so the library controls exactly which characters
are escaped — advertisement SDK wire formats in the paper's corpus embed
device identifiers in query parameters, and byte-faithful round-tripping
matters for signature extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError

#: Characters never percent-encoded in a query component (RFC 3986
#: unreserved set).
_UNRESERVED = frozenset("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~")

_HEX = "0123456789ABCDEF"


def percent_encode(text: str, *, plus_spaces: bool = True) -> str:
    """Percent-encode ``text`` for use in a query component.

    :param plus_spaces: encode ``" "`` as ``"+"`` (``application/x-www-form-
        urlencoded`` convention used by the ad SDK wire formats) rather than
        ``"%20"``.
    """
    out: list[str] = []
    for byte in text.encode("utf-8"):
        ch = chr(byte)
        if ch in _UNRESERVED:
            out.append(ch)
        elif ch == " " and plus_spaces:
            out.append("+")
        else:
            out.append(f"%{_HEX[byte >> 4]}{_HEX[byte & 0xF]}")
    return "".join(out)


def percent_decode(text: str, *, plus_spaces: bool = True) -> str:
    """Inverse of :func:`percent_encode`; tolerant of stray ``%`` signs.

    A ``%`` not followed by two hex digits is passed through literally, the
    way browsers and mobile HTTP stacks behave, so that slightly malformed
    captured traffic still parses.
    """
    out = bytearray()
    i = 0
    raw = text.encode("utf-8")
    while i < len(raw):
        byte = raw[i]
        if byte == 0x25 and i + 2 < len(raw) + 1:  # '%'
            hex_pair = raw[i + 1 : i + 3].decode("ascii", "replace")
            if len(hex_pair) == 2 and all(c in "0123456789abcdefABCDEF" for c in hex_pair):
                out.append(int(hex_pair, 16))
                i += 3
                continue
        if byte == 0x2B and plus_spaces:  # '+'
            out.append(0x20)
            i += 1
            continue
        out.append(byte)
        i += 1
    return out.decode("utf-8", "replace")


@dataclass(slots=True)
class QueryString:
    """An ordered multimap of query parameters.

    Order is preserved because conjunction signatures are ordered token
    sequences: ``udid=X&carrier=Y`` and ``carrier=Y&udid=X`` produce
    different invariant substrings.
    """

    pairs: list[tuple[str, str]] = field(default_factory=list)

    @classmethod
    def parse(cls, raw: str) -> "QueryString":
        """Parse ``a=1&b=two`` text; bare keys get an empty value."""
        pairs: list[tuple[str, str]] = []
        if not raw:
            return cls(pairs)
        for chunk in raw.split("&"):
            if not chunk:
                continue
            key, sep, value = chunk.partition("=")
            pairs.append((percent_decode(key), percent_decode(value) if sep else ""))
        return cls(pairs)

    def get(self, key: str, default: str | None = None) -> str | None:
        """First value for ``key`` or ``default``."""
        for k, v in self.pairs:
            if k == key:
                return v
        return default

    def get_all(self, key: str) -> list[str]:
        return [v for k, v in self.pairs if k == key]

    def add(self, key: str, value: str) -> None:
        self.pairs.append((key, value))

    def keys(self) -> list[str]:
        return [k for k, _v in self.pairs]

    def encode(self) -> str:
        """Render back to ``a=1&b=two`` wire text."""
        return "&".join(f"{percent_encode(k)}={percent_encode(v)}" for k, v in self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, key: object) -> bool:
        return any(k == key for k, _v in self.pairs)


def parse_url(url: str) -> tuple[str, str, str]:
    """Split a request target into ``(path, raw_query, fragment)``.

    Accepts either an origin-form target (``/path?q``) or an absolute URL
    (``http://host/path?q``); in the latter case the scheme and authority
    are discarded (the packet model carries the host separately).

    :raises ParseError: when the target is empty.
    """
    if not url:
        raise ParseError("empty request target")
    rest = url
    if "://" in rest:
        __, __, rest = rest.partition("://")
        slash = rest.find("/")
        rest = rest[slash:] if slash >= 0 else "/"
    rest, __, fragment = rest.partition("#")
    path, __, query = rest.partition("?")
    if not path.startswith("/"):
        path = "/" + path
    return path, query, fragment
