"""From-scratch HTTP/1.x request substrate.

The detector inspects three content fields of each outgoing request —
request-line, ``Cookie`` header, and message body — plus the destination
triple (IP, port, host).  This package provides:

- :class:`repro.http.message.HttpRequest` — the parsed message model,
- :class:`repro.http.packet.HttpPacket` — message + destination, the unit
  every distance and signature operates on,
- :func:`repro.http.parser.parse_request` — tolerant raw-bytes parser,
- :func:`repro.http.serializer.serialize_request` — canonical wire form.
"""

from repro.http.cookies import format_cookies, parse_cookie_header
from repro.http.message import HttpRequest
from repro.http.packet import Destination, HttpPacket
from repro.http.parser import parse_request
from repro.http.serializer import serialize_request
from repro.http.url import QueryString, parse_url, percent_decode, percent_encode

__all__ = [
    "HttpRequest",
    "HttpPacket",
    "Destination",
    "parse_request",
    "serialize_request",
    "parse_cookie_header",
    "format_cookies",
    "parse_url",
    "percent_decode",
    "percent_encode",
    "QueryString",
]
