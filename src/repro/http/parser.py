"""Tolerant HTTP/1.x request parser over raw bytes.

Captured mobile traffic is messy: mixed line endings, missing
``Content-Length``, folded headers.  The parser accepts what real HTTP
stacks emit while rejecting inputs that cannot be a request at all, raising
:class:`repro.errors.HttpParseError` with the offending fragment.
"""

from __future__ import annotations

from repro.errors import HttpParseError
from repro.http.message import SUPPORTED_METHODS, HttpRequest

_MAX_HEADER_COUNT = 256
_MAX_LINE_LENGTH = 16 * 1024


def _split_head_body(raw: bytes) -> tuple[bytes, bytes]:
    """Split at the first blank line, accepting CRLF or bare LF endings.

    The *earliest* separator occurrence wins regardless of flavour: with
    first-match-wins in tuple order, an LF-terminated head followed by a
    body containing ``\\r\\n\\r\\n`` would be split inside the body.
    """
    best_idx = -1
    best_len = 0
    for sep in (b"\r\n\r\n", b"\n\n"):
        idx = raw.find(sep)
        if idx >= 0 and (best_idx < 0 or idx < best_idx):
            best_idx, best_len = idx, len(sep)
    if best_idx < 0:
        return raw, b""
    return raw[:best_idx], raw[best_idx + best_len:]


def _decode_line(line: bytes) -> str:
    if len(line) > _MAX_LINE_LENGTH:
        raise HttpParseError("header line too long", line[:40])
    return line.decode("latin-1")


def parse_request(raw: bytes) -> HttpRequest:
    """Parse raw request bytes into a :class:`HttpRequest`.

    Rules applied, in order:

    1. head and body split at the first blank line (CRLF or LF);
    2. request-line must be ``METHOD SP TARGET [SP VERSION]``; a missing
       version defaults to ``HTTP/1.0`` (as HTTP/0.9-style clients do);
    3. header lines must contain a colon; obsolete line folding
       (continuation lines starting with whitespace) is unfolded;
    4. if a ``Content-Length`` header is present and shorter than the
       remaining bytes, the body is truncated to it (trailing pipelined
       data is not this request's body).

    :raises HttpParseError: when no request-line can be extracted.
    """
    if not raw or not raw.strip():
        raise HttpParseError("empty request")
    head, body = _split_head_body(raw)
    lines = head.replace(b"\r\n", b"\n").split(b"\n")
    request_line = _decode_line(lines[0]).strip()
    parts = request_line.split()
    if len(parts) == 2:
        method, target = parts
        version = "HTTP/1.0"
    elif len(parts) == 3:
        method, target, version = parts
    else:
        raise HttpParseError("malformed request line", request_line)
    if method.upper() not in SUPPORTED_METHODS:
        raise HttpParseError("unsupported method", method)
    if not version.upper().startswith("HTTP/"):
        raise HttpParseError("malformed version", version)

    headers: list[tuple[str, str]] = []
    for line in lines[1:]:
        text = _decode_line(line)
        if not text.strip():
            continue
        if text[0] in " \t":
            # Obsolete folding: continuation of the previous header value.
            if not headers:
                raise HttpParseError("continuation line before any header", text)
            name, value = headers[-1]
            headers[-1] = (name, value + " " + text.strip())
            continue
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpParseError("header line without colon", text)
        headers.append((name.strip(), value.strip()))
        if len(headers) > _MAX_HEADER_COUNT:
            raise HttpParseError("too many headers")

    request = HttpRequest(
        method=method,
        target=target,
        version=version.upper(),
        headers=headers,
        body=body,
    )
    declared = request.header("Content-Length")
    if declared.isdigit():
        length = int(declared)
        if length < len(body):
            request.body = body[:length]
    return request
