"""``Cookie`` request-header parsing and rendering.

The paper's content distance is computed over three fields, one of which is
the cookie string.  Ad modules use cookies to carry session and device
identifiers, so faithful parsing (order-preserving, tolerant of missing
values) matters for both labelling and signature extraction.
"""

from __future__ import annotations


def parse_cookie_header(header_value: str) -> list[tuple[str, str]]:
    """Parse a ``Cookie:`` header value into ordered ``(name, value)`` pairs.

    Splits on ``;``, trims surrounding whitespace, and treats a chunk with
    no ``=`` as a bare name with empty value (seen in the wild).  Double
    quotes around values are stripped per RFC 6265.

    >>> parse_cookie_header('sid=abc; udid="123"; flag')
    [('sid', 'abc'), ('udid', '123'), ('flag', '')]
    """
    pairs: list[tuple[str, str]] = []
    for chunk in header_value.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, value = chunk.partition("=")
        value = value.strip()
        if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
            value = value[1:-1]
        pairs.append((name.strip(), value if sep else ""))
    return pairs


def format_cookies(pairs: list[tuple[str, str]]) -> str:
    """Render pairs back into a ``Cookie:`` header value.

    >>> format_cookies([('sid', 'abc'), ('flag', '')])
    'sid=abc; flag='
    """
    return "; ".join(f"{name}={value}" for name, value in pairs)


def cookie_names(header_value: str) -> list[str]:
    """Just the cookie names, in order, for structural comparisons."""
    return [name for name, __ in parse_cookie_header(header_value)]
