"""The unit of analysis: an HTTP request plus its network destination.

The paper's packet model is ``p = {ip, port, host, rline, cookie, body}``.
:class:`HttpPacket` bundles a :class:`~repro.http.message.HttpRequest` with
a :class:`Destination` and carries provenance (which app sent it, when in
simulated time) that the corpus statistics need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParseError
from repro.http.message import HttpRequest
from repro.http.parser import parse_request
from repro.http.serializer import serialize_request
from repro.net.fqdn import normalize_host, registered_domain
from repro.net.ipv4 import IPv4Address
from repro.net.ports import validate_port


@dataclass(frozen=True, slots=True)
class Destination:
    """Where a packet was sent: the ``(ip, port, host)`` triple.

    ``host`` is the FQDN from the request's ``Host`` header (normalized to
    lowercase); ``ip`` is the resolved IPv4 address; ``port`` the TCP port.
    """

    ip: IPv4Address
    port: int
    host: str

    def __post_init__(self) -> None:
        validate_port(self.port)
        object.__setattr__(self, "host", normalize_host(self.host))

    @classmethod
    def make(cls, ip: str, port: int, host: str) -> "Destination":
        """Convenience constructor from dotted-quad text."""
        return cls(IPv4Address.parse(ip), port, host)

    @property
    def registered_domain(self) -> str:
        """Aggregation key used by the paper's Table II."""
        return registered_domain(self.host)

    def __str__(self) -> str:
        return f"{self.host}[{self.ip}]:{self.port}"


@dataclass(slots=True)
class HttpPacket:
    """One captured outgoing HTTP request.

    :param destination: the ``(ip, port, host)`` triple.
    :param request: the parsed request message.
    :param app_id: package name of the sending application (provenance).
    :param timestamp: seconds of simulated time since the session started.
    :param meta: free-form annotations set by the simulator (e.g. which
        ad module emitted the packet).  Never consulted by the detector —
        it exists for ground-truth bookkeeping and debugging only.
    """

    destination: Destination
    request: HttpRequest
    app_id: str = ""
    timestamp: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    # -- the six fields of the paper's packet model --------------------------

    @property
    def ip(self) -> IPv4Address:
        return self.destination.ip

    @property
    def port(self) -> int:
        return self.destination.port

    @property
    def host(self) -> str:
        return self.destination.host

    @property
    def request_line(self) -> str:
        return self.request.request_line

    @property
    def cookie(self) -> str:
        return self.request.cookie

    @property
    def body(self) -> bytes:
        return self.request.body

    # -- canonical text -----------------------------------------------------

    def canonical_text(self) -> str:
        """The inspected content in a deterministic, matchable form.

        Signatures are matched against this text: request-line, cookie and
        body joined by newlines.  The destination is intentionally not part
        of the text — destination constraints live on the signature itself.
        """
        return self.request.content_text()

    def wire_bytes(self) -> bytes:
        """Full canonical wire form of the request."""
        return serialize_request(self.request)

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (used by trace files)."""
        return {
            "ip": str(self.ip),
            "port": self.port,
            "host": self.host,
            "raw": self.wire_bytes().decode("latin-1"),
            "app_id": self.app_id,
            "timestamp": self.timestamp,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HttpPacket":
        """Inverse of :meth:`to_dict`.

        :raises ParseError: when required keys are missing or the embedded
            raw request does not parse.
        """
        try:
            destination = Destination.make(data["ip"], data["port"], data["host"])
            raw = data["raw"].encode("latin-1")
        except KeyError as exc:
            raise ParseError(f"packet record missing key {exc}") from exc
        return cls(
            destination=destination,
            request=parse_request(raw),
            app_id=data.get("app_id", ""),
            timestamp=float(data.get("timestamp", 0.0)),
            meta=dict(data.get("meta", {})),
        )
