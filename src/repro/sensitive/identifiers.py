"""Device identifier kinds and well-formed identifier generation.

The generators produce *structurally valid* identifiers — IMEIs and ICCIDs
carry correct Luhn check digits, IMSIs start with a real MCC/MNC — because
the simulated ad modules transmit them verbatim and the payload check must
find them inside arbitrary packet text without false anchoring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random


class IdentifierKind(enum.Enum):
    """The identifier taxonomy of the paper's Table III.

    ``ANDROID_ID_MD5``-style hashed rows in the table are represented by
    a (kind, transform) pair — see :mod:`repro.sensitive.transforms`.
    """

    ANDROID_ID = "ANDROID_ID"
    IMEI = "IMEI"
    IMSI = "IMSI"
    SIM_SERIAL = "SIM_SERIAL"
    CARRIER = "CARRIER"

    @property
    def is_udid(self) -> bool:
        """Whether the paper considers this a unique *device* identifier."""
        return self is not IdentifierKind.CARRIER


#: Japanese mobile carriers of the 2012 study period; the corpus device
#: population samples from these.
CARRIERS: tuple[str, ...] = ("NTT DOCOMO", "SoftBank", "KDDI", "EMOBILE", "WILLCOM")

#: (MCC, MNC) prefixes for Japanese carriers, used to build plausible IMSIs.
_MCC_MNC: dict[str, str] = {
    "NTT DOCOMO": "44010",
    "SoftBank": "44020",
    "KDDI": "44050",
    "EMOBILE": "44000",
    "WILLCOM": "44003",
}

#: Type Allocation Codes of handsets common in the study period (8 digits).
_TAC_POOL: tuple[str, ...] = (
    "35853704",  # Galaxy Nexus
    "35693803",  # Nexus S
    "35316604",  # Xperia
    "35824005",
    "35920405",
)


def luhn_check_digit(digits: str) -> int:
    """Check digit making ``digits + d`` pass the Luhn algorithm.

    Used for both IMEI (15th digit) and ICCID (final digit).

    >>> luhn_check_digit("49015420323751")
    8
    """
    if not digits.isdigit():
        raise ValueError(f"Luhn input must be numeric: {digits!r}")
    total = 0
    # Double every second digit from the right of (digits + check digit).
    for i, ch in enumerate(reversed(digits)):
        value = int(ch)
        if i % 2 == 0:
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return (10 - total % 10) % 10


def luhn_valid(digits: str) -> bool:
    """Whether a full identifier (check digit included) passes Luhn."""
    if not digits.isdigit() or len(digits) < 2:
        return False
    return luhn_check_digit(digits[:-1]) == int(digits[-1])


def make_imei(rng: Random) -> str:
    """A structurally valid 15-digit IMEI: TAC + serial + Luhn digit."""
    tac = rng.choice(_TAC_POOL)
    serial = "".join(str(rng.randrange(10)) for __ in range(6))
    partial = tac + serial
    return partial + str(luhn_check_digit(partial))


def make_imsi(rng: Random, carrier: str) -> str:
    """A 15-digit IMSI starting with the carrier's MCC+MNC."""
    prefix = _MCC_MNC.get(carrier, "44010")
    msin = "".join(str(rng.randrange(10)) for __ in range(15 - len(prefix)))
    return prefix + msin


def make_iccid(rng: Random, carrier: str) -> str:
    """A 19-digit SIM serial (ICCID) with a valid Luhn check digit.

    Format: ``89`` (telecom) + country code ``81`` (Japan) + issuer +
    account + check digit.
    """
    issuer = _MCC_MNC.get(carrier, "44010")[3:]
    partial = "8981" + issuer + "".join(str(rng.randrange(10)) for __ in range(18 - 4 - len(issuer)))
    return partial + str(luhn_check_digit(partial))


def make_android_id(rng: Random) -> str:
    """A 16-hex-digit Android ID, as generated at first boot."""
    return "".join(rng.choice("0123456789abcdef") for __ in range(16))


@dataclass(frozen=True, slots=True)
class DeviceIdentity:
    """The complete identifier set of one simulated device.

    This is the ground truth the payload check scans for; it corresponds to
    the experimenters *knowing their own test device's identifiers* when
    labelling the captured trace.
    """

    android_id: str
    imei: str
    imsi: str
    sim_serial: str
    carrier: str

    @classmethod
    def generate(cls, rng: Random) -> "DeviceIdentity":
        """Sample a coherent identity (IMSI/ICCID agree with the carrier)."""
        carrier = rng.choice(CARRIERS)
        return cls(
            android_id=make_android_id(rng),
            imei=make_imei(rng),
            imsi=make_imsi(rng, carrier),
            sim_serial=make_iccid(rng, carrier),
            carrier=carrier,
        )

    def value_of(self, kind: IdentifierKind) -> str:
        """The raw value for an identifier kind."""
        return {
            IdentifierKind.ANDROID_ID: self.android_id,
            IdentifierKind.IMEI: self.imei,
            IdentifierKind.IMSI: self.imsi,
            IdentifierKind.SIM_SERIAL: self.sim_serial,
            IdentifierKind.CARRIER: self.carrier,
        }[kind]

    def items(self) -> list[tuple[IdentifierKind, str]]:
        """All ``(kind, value)`` pairs, UDIDs first."""
        return [(kind, self.value_of(kind)) for kind in IdentifierKind]

    def to_dict(self) -> dict[str, str]:
        """JSON-serializable form (for persisting a capture's ground truth)."""
        return {
            "android_id": self.android_id,
            "imei": self.imei,
            "imsi": self.imsi,
            "sim_serial": self.sim_serial,
            "carrier": self.carrier,
        }

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "DeviceIdentity":
        """Inverse of :meth:`to_dict`.

        :raises KeyError: when a field is missing (identity files are
            written by :meth:`to_dict`, so this indicates corruption).
        """
        return cls(
            android_id=data["android_id"],
            imei=data["imei"],
            imsi=data["imsi"],
            sim_serial=data["sim_serial"],
            carrier=data["carrier"],
        )
