"""The payload check: ground-truth labelling of sensitive packets.

This is step one of the paper's server pipeline (Section IV-A): "it
generates a payload check, which separates application network traffic into
two groups: one containing packets with sensitive information, and the
other not."  The check knows the capture device's identity, derives every
on-wire spelling of every identifier (raw, MD5, SHA1, hex/url/base64
encoded), and scans each packet's inspected content for those spellings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import ReproError
from repro.http.packet import HttpPacket

if TYPE_CHECKING:
    from repro.reliability.quarantine import Quarantine
from repro.sensitive.identifiers import DeviceIdentity, IdentifierKind
from repro.sensitive.transforms import (
    Transform,
    transform_value,
    transform_variants,
    wire_spellings,
)

#: The (kind, transform) pairs the paper reports as Table III rows.
TABLE3_ROWS: tuple[tuple[IdentifierKind, Transform], ...] = (
    (IdentifierKind.ANDROID_ID, Transform.PLAIN),
    (IdentifierKind.ANDROID_ID, Transform.MD5),
    (IdentifierKind.ANDROID_ID, Transform.SHA1),
    (IdentifierKind.CARRIER, Transform.PLAIN),
    (IdentifierKind.IMEI, Transform.PLAIN),
    (IdentifierKind.IMEI, Transform.MD5),
    (IdentifierKind.IMEI, Transform.SHA1),
    (IdentifierKind.IMSI, Transform.PLAIN),
    (IdentifierKind.SIM_SERIAL, Transform.PLAIN),
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One sensitive value located inside one packet.

    :param kind: which identifier leaked.
    :param transform: how it was transformed before transmission.
    :param spelling: the exact substring that matched.
    :param offset: character offset of the match in the canonical text.
    """

    kind: IdentifierKind
    transform: Transform
    spelling: str
    offset: int

    @property
    def label(self) -> str:
        """Table III row label, e.g. ``"ANDROID_ID MD5"`` or ``"IMEI"``."""
        if self.transform is Transform.PLAIN:
            return self.kind.value
        return f"{self.kind.value} {self.transform.value}"


class PayloadCheck:
    """Scanner for one device identity's sensitive values.

    Builds the spelling tables once at construction; :meth:`scan` is then a
    pure substring search per spelling.  Case handling: hex-shaped values
    match both cases; the carrier name additionally matches its lowercase
    and url-encoded forms because SDKs normalize it inconsistently.

    :param identity: the device whose identifiers are sensitive.
    :param transforms: which transforms to look for (defaults to the
        paper's set: PLAIN, MD5, SHA1).
    """

    def __init__(
        self,
        identity: DeviceIdentity,
        transforms: tuple[Transform, ...] = (Transform.PLAIN, Transform.MD5, Transform.SHA1),
    ) -> None:
        self.identity = identity
        self.transforms = transforms
        self._table: list[tuple[IdentifierKind, Transform, str]] = []
        for kind, value in identity.items():
            for transform in transforms:
                if kind is IdentifierKind.CARRIER and transform.is_hash:
                    # The paper tracks the carrier *name*, never its hash.
                    continue
                for spelling in sorted(transform_variants(value, transform)):
                    self._table.append((kind, transform, spelling))
                if kind is IdentifierKind.CARRIER:
                    lowered = value.lower()
                    if lowered != value:
                        self._table.append((kind, transform, lowered))

    def spellings(self) -> tuple[str, ...]:
        """Every on-wire spelling the scanner searches for, deduplicated.

        This is the arena attacker's *preserve set*: a mutation that keeps
        at least one of these substrings intact keeps the packet inside
        the ground-truth suspicious group.
        """
        return tuple(dict.fromkeys(spelling for _, _, spelling in self._table))

    def churn_groups(self) -> tuple[tuple[str, ...], ...]:
        """Interchangeable spelling groups for the encoding-churn attacker.

        One group per (identifier, transform): the canonical transformed
        value first, then every other spelling of it the scanner knows
        (upper-hex, percent, base64).  Substituting any group member for
        any other re-spells a leak without ever leaving the scanner's
        table — the mutation changes the wire bytes, never the label.
        """
        groups: list[tuple[str, ...]] = []
        for kind, value in self.identity.items():
            for transform in self.transforms:
                if kind is IdentifierKind.CARRIER and transform.is_hash:
                    continue
                canonical = transform_value(value, transform)
                spellings = wire_spellings(canonical)
                long_enough = tuple(s for s in spellings if len(s) >= 4)
                if len(long_enough) >= 2:
                    groups.append(long_enough)
        return tuple(groups)

    def scan_text(self, text: str) -> list[Finding]:
        """All findings in a text, sorted by offset then label."""
        findings: list[Finding] = []
        for kind, transform, spelling in self._table:
            start = 0
            while True:
                offset = text.find(spelling, start)
                if offset < 0:
                    break
                findings.append(Finding(kind, transform, spelling, offset))
                start = offset + 1
        findings.sort(key=lambda f: (f.offset, f.label))
        return _drop_shadowed(findings)

    def scan(self, packet: HttpPacket) -> list[Finding]:
        """All findings in a packet's inspected content."""
        return self.scan_text(packet.canonical_text())

    def is_sensitive(self, packet: HttpPacket) -> bool:
        """Whether the packet belongs to the suspicious group."""
        return bool(self.scan(packet))

    def leak_labels(self, packet: HttpPacket) -> set[str]:
        """Distinct Table III row labels present in the packet."""
        return {finding.label for finding in self.scan(packet)}

    def split(
        self, packets: Iterable[HttpPacket], quarantine: "Quarantine | None" = None
    ) -> tuple[list[HttpPacket], list[HttpPacket]]:
        """Partition packets into ``(suspicious, normal)`` groups.

        This reproduces the manual separation of Section V-A; order within
        each group follows the input order.

        :param quarantine: when given, a packet whose canonicalization
            raises (e.g. :class:`~repro.errors.HttpParseError` from a
            corrupt capture) is quarantined instead of aborting the batch;
            without one, errors propagate as before.
        """
        suspicious: list[HttpPacket] = []
        normal: list[HttpPacket] = []
        for packet in packets:
            if quarantine is None:
                sensitive = self.is_sensitive(packet)
            else:
                try:
                    sensitive = self.is_sensitive(packet)
                except ReproError as exc:
                    quarantine.add(exc, payload=packet)
                    continue
            (suspicious if sensitive else normal).append(packet)
        return suspicious, normal

    def iter_findings(
        self, packets: Iterable[HttpPacket]
    ) -> Iterator[tuple[HttpPacket, list[Finding]]]:
        """Yield ``(packet, findings)`` for packets with at least one hit."""
        for packet in packets:
            findings = self.scan(packet)
            if findings:
                yield packet, findings


def _drop_shadowed(findings: list[Finding]) -> list[Finding]:
    """Remove findings fully contained in a longer finding of the same kind.

    A percent-encoded spelling contains the plain spelling as a substring
    for values without reserved characters; without this pass one leak
    would be double counted.
    """
    kept: list[Finding] = []
    for finding in findings:
        span = (finding.offset, finding.offset + len(finding.spelling))
        shadowed = False
        for other in findings:
            if other is finding or other.kind is not finding.kind:
                continue
            if other.transform is not finding.transform:
                continue
            other_span = (other.offset, other.offset + len(other.spelling))
            if other_span[0] <= span[0] and span[1] <= other_span[1] and other_span != span:
                shadowed = True
                break
        if not shadowed:
            kept.append(finding)
    return kept
