"""Obfuscated leak transforms — probing the detector's stated limits.

The paper (Section VI): "Our current approach also does not focus on
encrypted or obfuscated traffic ... but if an advertisement module uses
one encryption key among applications or applies a cryptographic hash
function to sensitive information, our approach can detect it."

This module implements a spectrum of obfuscations a leaking SDK could
apply, ordered by how much structure survives on the wire:

- ``REVERSED`` — value sent back-to-front (trivially stable per device),
- ``ROT13_HEX`` — a fixed substitution over hex digits (stable),
- ``XOR_FIXED_KEY`` — "one encryption key among applications": the
  ciphertext is constant per (key, value), so signatures still anchor,
- ``SALTED_HASH_PER_APP`` — hash(salt_app + value): constant per app but
  different across apps — destination-scoped structure survives, values
  do not,
- ``RANDOM_NONCE_HASH`` — hash(nonce + value) with a fresh nonce each
  request: nothing stable remains; only structural tokens can match.

The obfuscation bench generates traffic from a module wrapped in each
transform and measures which levels signatures survive — making the
paper's claim quantitative.
"""

from __future__ import annotations

import base64
import codecs
import enum
import gzip
import hashlib
from random import Random

from repro.http.url import percent_decode, percent_encode

#: Fixed substitution used by ROT13_HEX (a bijection over hex digits).
_HEX_MAP = str.maketrans("0123456789abcdef", "fedcba9876543210")


class Obfuscation(enum.Enum):
    """How an SDK disguises a sensitive value before transmission."""

    NONE = "none"
    REVERSED = "reversed"
    ROT13_HEX = "rot13_hex"
    XOR_FIXED_KEY = "xor_fixed_key"
    SALTED_HASH_PER_APP = "salted_hash_per_app"
    RANDOM_NONCE_HASH = "random_nonce_hash"

    @property
    def stable_per_device(self) -> bool:
        """Whether the wire form is constant for one device (and thus can
        itself become an invariant token)."""
        return self in (
            Obfuscation.NONE,
            Obfuscation.REVERSED,
            Obfuscation.ROT13_HEX,
            Obfuscation.XOR_FIXED_KEY,
        )


class WireEncoding(enum.Enum):
    """Invertible on-wire encodings a leaking SDK may layer over a value.

    Unlike :class:`Obfuscation` (one-way disguises), every member here is
    a bijection with :func:`decode_wire` as its exact inverse, so chains
    compose and round-trip (``decode_chain(encode_chain(v, c), c) == v``).

    ``DETECTABLE_WIRE_ENCODINGS`` is the subset whose output the payload
    check still recognizes (its spelling table covers literal, upper-hex,
    percent and base64 forms — see ``transforms.wire_spellings``).  The
    arena's encoding-churn attacker rotates a leak value only within that
    subset; ``HEX_BYTES`` and ``GZIP_BASE64`` escape the table and are
    reserved for chaff and round-trip tests.
    """

    IDENTITY = "identity"
    UPPER_HEX = "upper_hex"
    PERCENT = "percent"
    BASE64 = "base64"
    HEX_BYTES = "hex_bytes"
    GZIP_BASE64 = "gzip_b64"


#: Encodings whose output stays inside the payload check's spelling table.
DETECTABLE_WIRE_ENCODINGS: tuple[WireEncoding, ...] = (
    WireEncoding.IDENTITY,
    WireEncoding.UPPER_HEX,
    WireEncoding.PERCENT,
    WireEncoding.BASE64,
)

_HEX_DIGITS = set("0123456789abcdef")


def _is_hex_shaped(value: str) -> bool:
    return bool(value) and all(c in _HEX_DIGITS for c in value)


def encode_wire(value: str, encoding: WireEncoding) -> str:
    """Apply one invertible wire encoding to ``value``.

    :raises ValueError: for ``UPPER_HEX`` on a value that is not
        lowercase hex (the upper-casing would not be invertible).
    """
    if encoding is WireEncoding.IDENTITY:
        return value
    if encoding is WireEncoding.UPPER_HEX:
        if not _is_hex_shaped(value):
            raise ValueError("UPPER_HEX needs a lowercase hex-shaped value")
        return value.upper()
    if encoding is WireEncoding.PERCENT:
        return percent_encode(value)
    if encoding is WireEncoding.BASE64:
        return base64.b64encode(value.encode("utf-8")).decode("ascii")
    if encoding is WireEncoding.HEX_BYTES:
        return value.encode("utf-8").hex()
    if encoding is WireEncoding.GZIP_BASE64:
        compressed = gzip.compress(value.encode("utf-8"), mtime=0)
        return base64.b64encode(compressed).decode("ascii")
    raise ValueError(f"unknown wire encoding {encoding!r}")


def decode_wire(encoded: str, encoding: WireEncoding) -> str:
    """Exact inverse of :func:`encode_wire` for the same member."""
    if encoding is WireEncoding.IDENTITY:
        return encoded
    if encoding is WireEncoding.UPPER_HEX:
        return encoded.lower()
    if encoding is WireEncoding.PERCENT:
        return percent_decode(encoded)
    if encoding is WireEncoding.BASE64:
        return base64.b64decode(encoded.encode("ascii")).decode("utf-8")
    if encoding is WireEncoding.HEX_BYTES:
        return bytes.fromhex(encoded).decode("utf-8")
    if encoding is WireEncoding.GZIP_BASE64:
        compressed = base64.b64decode(encoded.encode("ascii"))
        return gzip.decompress(compressed).decode("utf-8")
    raise ValueError(f"unknown wire encoding {encoding!r}")


def encode_chain(value: str, encodings: tuple[WireEncoding, ...]) -> str:
    """Compose encodings left to right: the first is applied first."""
    for encoding in encodings:
        value = encode_wire(value, encoding)
    return value


def decode_chain(encoded: str, encodings: tuple[WireEncoding, ...]) -> str:
    """Invert :func:`encode_chain` for the same chain (applied in reverse)."""
    for encoding in reversed(encodings):
        encoded = decode_wire(encoded, encoding)
    return encoded


def obfuscate(
    value: str,
    method: Obfuscation,
    *,
    app_id: str = "",
    rng: Random | None = None,
) -> str:
    """Apply ``method`` to ``value`` as a leaking SDK would.

    :param app_id: required for the per-app salted hash.
    :param rng: required for the random-nonce hash (supplies the nonce).
    :raises ValueError: when a required argument is missing.
    """
    if method is Obfuscation.NONE:
        return value
    if method is Obfuscation.REVERSED:
        return value[::-1]
    if method is Obfuscation.ROT13_HEX:
        return codecs.encode(value, "rot13").lower().translate(_HEX_MAP)
    if method is Obfuscation.XOR_FIXED_KEY:
        key = b"s3cr3t-sdk-key"
        data = value.encode("utf-8")
        cipher = bytes(b ^ key[i % len(key)] for i, b in enumerate(data))
        return cipher.hex()
    if method is Obfuscation.SALTED_HASH_PER_APP:
        if not app_id:
            raise ValueError("salted hash needs the app_id as salt")
        return hashlib.md5(f"{app_id}|{value}".encode("utf-8")).hexdigest()
    if method is Obfuscation.RANDOM_NONCE_HASH:
        if rng is None:
            raise ValueError("nonce hash needs an rng")
        nonce = "".join(rng.choice("0123456789abcdef") for __ in range(8))
        digest = hashlib.md5(f"{nonce}|{value}".encode("utf-8")).hexdigest()
        return f"{nonce}{digest}"
    raise ValueError(f"unknown obfuscation {method!r}")


def obfuscated_leak_packets(
    identity_value: str,
    method: Obfuscation,
    n_packets: int,
    rng: Random,
    *,
    app_id: str = "jp.test.obfuscated",
    host: str = "track.shady-sdk.com",
    ip: str = "198.18.7.0",
):
    """Traffic from a synthetic SDK leaking ``identity_value`` under
    ``method`` — the workload of the obfuscation bench.

    Each packet is a GET with a session-fresh request id plus the
    obfuscated value, so the *only* stable content is whatever the
    obfuscation leaves stable.
    """
    from repro.http.message import HttpRequest
    from repro.http.packet import Destination, HttpPacket
    from repro.net.ipv4 import IPv4Address

    base_ip = IPv4Address.parse(ip)
    packets = []
    for i in range(n_packets):
        wire_value = obfuscate(identity_value, method, app_id=app_id, rng=rng)
        request_id = "".join(rng.choice("0123456789abcdef") for __ in range(12))
        request = HttpRequest(
            method="GET",
            target=f"/t/collect?rid={request_id}&dv={wire_value}&v=2",
            headers=[("Host", host), ("User-Agent", "shady-sdk/2.0"), ("Accept", "*/*")],
        )
        packets.append(
            HttpPacket(
                destination=Destination(IPv4Address(base_ip.value + 1), 80, host),
                request=request,
                app_id=app_id,
                timestamp=float(i),
                meta={"service": "shady", "event": "collect", "obfuscation": method.value},
            )
        )
    return packets
