"""Location leakage: the paper's third sensitive category, detected.

Table I tracks the LOCATION permission as sensitive, and the paper cites
Grace et al. (WiSec 2012, its ref [3]) on ad libraries harvesting
location — but Table III never measures location leaks, because a
coordinate is harder to label than an identifier: SDKs truncate digits,
add jitter, and there is no exact string to search for.

This module closes that gap with *tolerance matching*: scan packet text
for coordinate-shaped decimal pairs, parse them, and flag pairs within a
configurable radius of the device's true position.  It is deliberately a
separate check from :class:`~repro.sensitive.payload_check.PayloadCheck`
so the Table III reproduction stays exactly the paper's identifier set.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from random import Random
from typing import Iterable

from repro.http.packet import HttpPacket

#: Rough metres per degree of latitude (good enough for a radius check).
_METRES_PER_DEGREE = 111_320.0

#: Decimal numbers with 3+ fraction digits — coordinate-shaped values.
_COORD_PATTERN = re.compile(r"(-?\d{1,3}\.\d{3,8})")


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS84 coordinate.

    :raises ValueError: for out-of-range latitude/longitude.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")

    def distance_metres(self, other: "GeoPoint") -> float:
        """Equirectangular approximation — accurate enough below ~100 km."""
        earth_radius = 6_371_000.0
        mean_lat = math.radians((self.latitude + other.latitude) / 2.0)
        dx = math.radians(other.longitude - self.longitude) * math.cos(mean_lat)
        dy = math.radians(other.latitude - self.latitude)
        return math.hypot(dx, dy) * earth_radius

    @classmethod
    def tokyo_area(cls, rng: Random) -> "GeoPoint":
        """A random point in the greater Tokyo area (the study's locale)."""
        return cls(
            latitude=35.68 + rng.uniform(-0.25, 0.25),
            longitude=139.76 + rng.uniform(-0.35, 0.35),
        )

    def jittered(self, rng: Random, *, max_metres: float = 150.0) -> "GeoPoint":
        """The point as a coarse GPS fix would report it."""
        jitter = max_metres / _METRES_PER_DEGREE
        return GeoPoint(
            latitude=self.latitude + rng.uniform(-jitter, jitter),
            longitude=self.longitude + rng.uniform(-jitter, jitter),
        )

    def wire_format(self, precision: int = 6) -> tuple[str, str]:
        """``(lat, lon)`` strings the way SDKs serialize them."""
        return (f"{self.latitude:.{precision}f}", f"{self.longitude:.{precision}f}")


@dataclass(frozen=True, slots=True)
class LocationFinding:
    """One coordinate pair near the device's position."""

    point: GeoPoint
    distance_metres: float
    offset: int


class LocationCheck:
    """Tolerance-based location-leak scanner.

    :param home: the device's true position.
    :param radius_metres: pairs within this distance count as leaks.
        The default (1,500 m) absorbs GPS jitter and SDK truncation while
        rejecting other cities' coordinates.
    """

    def __init__(self, home: GeoPoint, radius_metres: float = 1500.0) -> None:
        if radius_metres <= 0:
            raise ValueError("radius must be positive")
        self.home = home
        self.radius_metres = radius_metres

    def scan_text(self, text: str) -> list[LocationFinding]:
        """All adjacent coordinate-shaped pairs within the radius.

        Candidate pairs are *consecutive* matches (lat then lon, the only
        order SDKs use); a longitude-first pair is also tried so
        ``lon,lat`` APIs are not missed.
        """
        matches = list(_COORD_PATTERN.finditer(text))
        findings: list[LocationFinding] = []
        for first, second in zip(matches, matches[1:]):
            for lat_text, lon_text in ((first.group(1), second.group(1)),
                                       (second.group(1), first.group(1))):
                try:
                    point = GeoPoint(float(lat_text), float(lon_text))
                except ValueError:
                    continue
                distance = self.home.distance_metres(point)
                if distance <= self.radius_metres:
                    findings.append(
                        LocationFinding(point=point, distance_metres=distance, offset=first.start())
                    )
                    break
        return findings

    def is_leaking(self, packet: HttpPacket) -> bool:
        return bool(self.scan_text(packet.canonical_text()))

    def split(self, packets: Iterable[HttpPacket]) -> tuple[list[HttpPacket], list[HttpPacket]]:
        """Partition into ``(location-leaking, other)``."""
        leaking: list[HttpPacket] = []
        other: list[HttpPacket] = []
        for packet in packets:
            (leaking if self.is_leaking(packet) else other).append(packet)
        return leaking, other
