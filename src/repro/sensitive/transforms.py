"""The transform lattice: how identifiers appear on the wire.

Ad modules in the paper's corpus do not always send identifiers verbatim —
many transmit the MD5 or SHA1 of a UDID ("some modules compute UDID's hash
... at the time of transmission").  On top of hashing, HTTP transport adds
encodings (percent-encoding, upper/lower hex, base64).  The payload check
must recognize every plausible on-wire spelling, so this module enumerates
a closed set of transforms and derives all spellings of a value.
"""

from __future__ import annotations

import base64
import enum
import hashlib

from repro.http.url import percent_encode


class Transform(enum.Enum):
    """How a sensitive value was transformed before transmission.

    ``PLAIN`` covers byte-identical transmission; ``MD5``/``SHA1`` are the
    hashed forms the paper tracks as separate Table III rows; ``SHA256`` is
    included as a forward-looking extension (modern SDKs use it).
    """

    PLAIN = "PLAIN"
    MD5 = "MD5"
    SHA1 = "SHA1"
    SHA256 = "SHA256"

    @property
    def is_hash(self) -> bool:
        return self is not Transform.PLAIN


def transform_value(value: str, transform: Transform) -> str:
    """Apply ``transform`` to ``value``; hashes return lowercase hex digests.

    >>> transform_value("abc", Transform.MD5)
    '900150983cd24fb0d6963f7d28e17f72'
    """
    if transform is Transform.PLAIN:
        return value
    data = value.encode("utf-8")
    if transform is Transform.MD5:
        return hashlib.md5(data).hexdigest()
    if transform is Transform.SHA1:
        return hashlib.sha1(data).hexdigest()
    if transform is Transform.SHA256:
        return hashlib.sha256(data).hexdigest()
    raise ValueError(f"unknown transform {transform!r}")


def wire_spellings(text: str) -> tuple[str, ...]:
    """All wire encodings of one literal string, canonical form first.

    Covers: the literal itself, upper-case hex variant (for hex-shaped
    values), percent-encoding, and standard base64 of the UTF-8 bytes.
    Every element is a spelling the payload check's scanner searches for,
    so any substitution *within* this tuple keeps a leak detectable —
    the contract the evasion arena's encoding-churn mutation relies on.
    """
    variants = [text]
    if any(c in "abcdef" for c in text) and all(c in "0123456789abcdef" for c in text):
        variants.append(text.upper())
    encoded = percent_encode(text)
    if encoded != text:
        variants.append(encoded)
    variants.append(base64.b64encode(text.encode("utf-8")).decode("ascii"))
    return tuple(dict.fromkeys(variants))


def _encodings(text: str) -> set[str]:
    """Set view of :func:`wire_spellings` (the scanner's search table)."""
    return set(wire_spellings(text))


def transform_variants(value: str, transform: Transform) -> set[str]:
    """Every on-wire spelling of ``transform(value)``.

    The result is what a scanner should search packet text for.  Spellings
    shorter than 4 characters are dropped — they would anchor on noise.
    """
    transformed = transform_value(value, transform)
    return {v for v in _encodings(transformed) if len(v) >= 4}


def all_wire_spellings(value: str, transforms: tuple[Transform, ...] = tuple(Transform)) -> dict[Transform, set[str]]:
    """Map each transform to its spelling set for ``value``."""
    return {t: transform_variants(value, t) for t in transforms}
