"""Sensitive-information model: device identifiers and the payload check.

The paper's notion of *sensitive information* (Section V-A) is:

- UDIDs — Android ID, IMEI, IMSI, SIM serial (ICCID),
- their MD5 and SHA1 hashes,
- the carrier name.

:class:`repro.sensitive.identifiers.DeviceIdentity` models one device's
identifier set; :class:`repro.sensitive.payload_check.PayloadCheck` is the
mechanical labeler that splits a trace into the suspicious and normal
groups.
"""

from repro.sensitive.identifiers import (
    CARRIERS,
    DeviceIdentity,
    IdentifierKind,
    luhn_check_digit,
    make_android_id,
    make_iccid,
    make_imei,
    make_imsi,
)
from repro.sensitive.location import GeoPoint, LocationCheck
from repro.sensitive.obfuscation import Obfuscation, obfuscate
from repro.sensitive.payload_check import Finding, PayloadCheck
from repro.sensitive.transforms import Transform, transform_value, transform_variants

__all__ = [
    "IdentifierKind",
    "DeviceIdentity",
    "CARRIERS",
    "luhn_check_digit",
    "make_imei",
    "make_imsi",
    "make_iccid",
    "make_android_id",
    "Transform",
    "transform_value",
    "transform_variants",
    "PayloadCheck",
    "Finding",
    "Obfuscation",
    "obfuscate",
    "GeoPoint",
    "LocationCheck",
]
