"""The round-driven arena: attacker vs defender, scored for recovery.

One arena episode per mutation family:

- **round 0** (pre-attack): the boot signature set screens unmutated
  leaking + benign traffic; its recall is the recovery target.
- **rounds 1..N** (attack): the family's :class:`MutationPlan` mutates
  the same leaking packets for that round, the mutants interleave with
  the benign stream (seeded shuffle), and the
  :class:`~repro.serving.gateway.ScreeningGateway` screens the stream —
  applying at most one :class:`ReloadEvent` first, carrying whatever the
  defender republished after the previous round.  Misses (sensitive per
  payload-check ground truth, not flagged) feed
  :meth:`DefenderLoop.observe_misses`, which may republish a regenerated
  set for the *next* round — a one-round detection/regeneration lag, as
  in production.

Scoring, per family, over the attack rounds:

- **rounds-to-recovery** — rounds from evasion onset (recall first drops
  below ``pre - epsilon``) until recall first returns to within
  ``epsilon`` of pre-attack (0 when the family never evaded);
- **evasion half-life** — rounds from peak evasion until the evasion
  rate first falls to half its peak (0.0 when peak evasion <= epsilon);
- **recovered** — no lasting evasion: the final round's recall is within
  ``epsilon`` of pre-attack.

Determinism: every random choice derives from ``(seed, labels)`` via
``derive_rng``; mutations are pure in ``(seed, round, packet)``; the
report contains **no wall-clock fields** (counting metrics only), so the
same seed produces a byte-identical ``BENCH_arena.json`` anywhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.arena.defender import DefenderConfig, DefenderLoop
from repro.arena.mutations import MutationFamily, MutationPlan, plans_for
from repro.core.pipeline import PipelineConfig
from repro.eval.crossval import generate_from
from repro.eval.perf import cpu_count
from repro.obs import NULL_OBS, Observability
from repro.serving.gateway import (
    GatewayConfig,
    ReloadEvent,
    ScreeningGateway,
    ServeOutcome,
)
from repro.serving.loadgen import ScreeningEvent
from repro.signatures.generator import GeneratorConfig
from repro.simulation.rng import derive_rng

@dataclass(frozen=True, slots=True)
class ArenaBudget:
    """CI gates for the arena bench (``None`` disables one).

    Everything here is counting-based (rounds, rates per round) — never
    wall clock — so the gates are deterministic per seed.

    :param max_fp_regression: ceiling on how far any attack round's
        benign false-positive rate may exceed the boot set's own
        pre-attack rate — the defender must not buy recall back with
        broader, noisier signatures.
    """

    min_pre_attack_recall: float | None = 0.6
    max_rounds_to_recovery: int | None = 3
    max_evasion_half_life: float | None = 3.0
    max_fp_regression: float | None = 0.02
    require_recovered: bool = True
    require_ground_truth_intact: bool = True

    def violations(self, report: "ArenaReport") -> list[str]:
        found: list[str] = []
        if self.require_ground_truth_intact and not report.ground_truth_intact:
            found.append(
                "a mutated-but-leaking packet escaped payload-check ground truth"
            )
        for name, episode in sorted(report.families.items()):
            pre = episode["pre_attack_recall"]
            if (
                self.min_pre_attack_recall is not None
                and pre < self.min_pre_attack_recall
            ):
                found.append(
                    f"{name}: pre-attack recall {pre:.3f} "
                    f"< {self.min_pre_attack_recall:.3f}"
                )
            if self.require_recovered and not episode["recovered"]:
                found.append(
                    f"{name}: recall not restored within epsilon of "
                    f"pre-attack by the final round"
                )
            recovery = episode["rounds_to_recovery"]
            if self.max_rounds_to_recovery is not None and (
                recovery is None or recovery > self.max_rounds_to_recovery
            ):
                found.append(
                    f"{name}: rounds-to-recovery "
                    f"{'never' if recovery is None else recovery} "
                    f"> {self.max_rounds_to_recovery}"
                )
            half_life = episode["evasion_half_life"]
            if self.max_evasion_half_life is not None and (
                half_life is None or half_life > self.max_evasion_half_life
            ):
                found.append(
                    f"{name}: evasion half-life "
                    f"{'never' if half_life is None else half_life} "
                    f"> {self.max_evasion_half_life}"
                )
            if self.max_fp_regression is not None:
                worst_fp = max(row["fp_rate"] for row in episode["rounds"])
                ceiling = episode["pre_attack_fp_rate"] + self.max_fp_regression
                if worst_fp > ceiling:
                    found.append(
                        f"{name}: benign false-positive rate {worst_fp:.3f} "
                        f"regressed past pre-attack "
                        f"{episode['pre_attack_fp_rate']:.3f} "
                        f"+ {self.max_fp_regression:.3f}"
                    )
        return found

    def to_dict(self) -> dict:
        return {
            "min_pre_attack_recall": self.min_pre_attack_recall,
            "max_rounds_to_recovery": self.max_rounds_to_recovery,
            "max_evasion_half_life": self.max_evasion_half_life,
            "max_fp_regression": self.max_fp_regression,
            "require_recovered": self.require_recovered,
            "require_ground_truth_intact": self.require_ground_truth_intact,
        }


@dataclass(slots=True)
class ArenaReport:
    """One arena run, ready for ``BENCH_arena.json`` (no wall-clock)."""

    n_apps: int
    seed: int
    rounds: int
    epsilon: float
    threshold: float
    train: int
    leak: int
    benign: int
    workers: int
    cpu_count: int
    boot: dict = field(default_factory=dict)
    families: dict = field(default_factory=dict)
    ground_truth_intact: bool = True
    budget: dict = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Whether every family's recall was restored within epsilon."""
        return all(e["recovered"] for e in self.families.values())

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "bench": "arena",
            "corpus": {"n_apps": self.n_apps, "seed": self.seed},
            "seed": self.seed,
            "rounds": self.rounds,
            "epsilon": self.epsilon,
            "threshold": self.threshold,
            "traffic": {
                "train": self.train,
                "leak": self.leak,
                "benign": self.benign,
            },
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "boot": self.boot,
            "families": self.families,
            "ground_truth_intact": self.ground_truth_intact,
            "recovered": self.recovered,
            "budget": self.budget,
            "violations": self.violations,
            "ok": self.ok,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def render(self) -> str:
        """Fixed-width human summary, in the repo's report style."""
        lines = [
            "Arena bench — adversarial evasion vs self-healing regeneration",
            f"  corpus apps={self.n_apps} seed={self.seed} "
            f"train={self.train} leak={self.leak} benign={self.benign}",
            f"  rounds={self.rounds} epsilon={self.epsilon} "
            f"threshold={self.threshold} boot_signatures="
            f"{self.boot.get('n_signatures')} cpus={self.cpu_count}",
        ]
        for name, episode in sorted(self.families.items()):
            recovery = episode["rounds_to_recovery"]
            half_life = episode["evasion_half_life"]
            lines.append(
                f"  {name:<15} pre={episode['pre_attack_recall']:.3f} "
                f"peak_evasion={episode['peak_evasion']:.3f} "
                f"final={episode['final_recall']:.3f} "
                f"recovery={'never' if recovery is None else recovery}r "
                f"half_life={'never' if half_life is None else half_life} "
                f"republishes={episode['republishes']} "
                f"recovered={episode['recovered']}"
            )
        lines.append(
            f"  ground truth intact: {self.ground_truth_intact}  "
            f"recovered: {self.recovered}"
        )
        if self.violations:
            lines.append("  BUDGET VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  budget: ok")
        return "\n".join(lines)


def _recovery_metrics(
    pre: float, ledger: list[dict], epsilon: float
) -> tuple[int | None, float | None, bool]:
    """``(rounds_to_recovery, evasion_half_life, recovered)`` for one episode."""
    recalls = [row["recall"] for row in ledger]
    evasions = [row["evasion_rate"] for row in ledger]
    floor = pre - epsilon
    onset = next((i for i, r in enumerate(recalls) if r < floor), None)
    if onset is None:
        rounds_to_recovery: int | None = 0
    else:
        back = next(
            (i for i, r in enumerate(recalls[onset:], start=onset) if r >= floor),
            None,
        )
        rounds_to_recovery = None if back is None else back - onset
    peak = max(evasions, default=0.0)
    if peak <= epsilon:
        half_life: float | None = 0.0
    else:
        r_peak = evasions.index(peak)
        decayed = next(
            (
                i
                for i, e in enumerate(evasions[r_peak:], start=r_peak)
                if e <= peak / 2.0
            ),
            None,
        )
        half_life = None if decayed is None else float(decayed - r_peak)
    recovered = bool(recalls) and recalls[-1] >= floor
    return rounds_to_recovery, half_life, recovered


def _screen_round(
    gateway: ScreeningGateway,
    leak_packets: list,
    benign_packets: list,
    *,
    seed: int,
    family: str,
    round_no: int,
    reloads: Sequence[ReloadEvent] = (),
) -> tuple[int, int, list]:
    """Screen one interleaved round; ``(flagged_leaks, flagged_benign, misses)``.

    The leak/benign interleave is a seeded shuffle so batches mix both
    populations; every arrival is admitted (capacity covers the round),
    so each verdict comes from the full sharded matcher.
    """
    rng = derive_rng(seed, "arena", family, "interleave", str(round_no))
    combined = [(True, packet) for packet in leak_packets] + [
        (False, packet) for packet in benign_packets
    ]
    rng.shuffle(combined)
    events = [
        ScreeningEvent(
            seq=i, tick=float(i), device_id=f"dev-{i % 11:02d}", packet=packet
        )
        for i, (__, packet) in enumerate(combined)
    ]
    results = gateway.run(events, reloads)
    flagged_leaks = 0
    flagged_benign = 0
    misses = []
    for (is_leak, packet), result in zip(combined, results):
        flagged = result.outcome is ServeOutcome.FLAGGED
        if is_leak:
            flagged_leaks += int(flagged)
            if not flagged:
                misses.append(packet)
        else:
            flagged_benign += int(flagged)
    return flagged_leaks, flagged_benign, misses


def run_arena(
    *,
    n_apps: int = 120,
    seed: int = 0,
    rounds: int = 6,
    train: int = 160,
    leak: int = 96,
    benign: int = 128,
    families: Sequence[MutationFamily | str] | None = None,
    epsilon: float = 0.05,
    threshold: float = 1.2,
    max_cached_pairs: int = 50_000,
    workers: int = 1,
    budget: ArenaBudget | None = None,
    obs: Observability | None = None,
) -> ArenaReport:
    """Run the full attacker-vs-defender sweep; one episode per family.

    Deterministic per ``(n_apps, seed, sizes)``: corpus, boot set,
    mutations, interleave and defender behaviour all derive from the
    seed, and the report carries no wall-clock fields — double runs are
    byte-identical.
    """
    from repro.simulation.corpus import build_corpus

    obs = obs or NULL_OBS
    budget = budget or ArenaBudget()
    chosen: list[MutationFamily] = [
        f if isinstance(f, MutationFamily) else MutationFamily(f)
        for f in (families if families is not None else list(MutationFamily))
    ]

    corpus = build_corpus(n_apps=n_apps, seed=seed)
    check = corpus.payload_check()
    suspicious, normal = check.split(corpus.trace)
    if len(suspicious) < train + leak:
        raise ValueError(
            f"corpus has {len(suspicious)} suspicious packets, need "
            f"{train + leak} (train+leak); raise n_apps"
        )
    if len(normal) < benign:
        raise ValueError(
            f"corpus has {len(normal)} normal packets, need {benign}"
        )
    train_packets = suspicious[:train]
    leak_packets = suspicious[train : train + leak]
    benign_packets = normal[:benign]

    with obs.span("arena_boot", track="arena", train=train):
        boot = generate_from(
            train_packets,
            PipelineConfig(
                generator=GeneratorConfig(cut_height=threshold), workers=workers
            ),
        )

    plans = plans_for(check, seed=seed, families=chosen)
    gateway_config = GatewayConfig(
        queue_capacity=max(64, leak + benign), batch_size=16
    )
    defender_config = DefenderConfig(
        threshold=threshold, max_cached_pairs=max_cached_pairs, workers=workers
    )

    families_out: dict[str, dict] = {}
    ground_truth_intact = True
    for plan in plans:
        name = plan.family.value
        with obs.span("arena_family", track="arena", family=name, rounds=rounds):
            episode, intact = _run_episode(
                plan,
                boot,
                check,
                leak_packets,
                benign_packets,
                rounds=rounds,
                seed=seed,
                epsilon=epsilon,
                gateway_config=gateway_config,
                defender_config=defender_config,
                obs=obs,
            )
        families_out[name] = episode
        ground_truth_intact = ground_truth_intact and intact
        obs.inc("arena_families")

    report = ArenaReport(
        n_apps=n_apps,
        seed=seed,
        rounds=rounds,
        epsilon=epsilon,
        threshold=threshold,
        train=train,
        leak=leak,
        benign=benign,
        workers=workers,
        cpu_count=cpu_count(),
        boot={"n_signatures": len(boot), "set_version": 1},
        families=families_out,
        ground_truth_intact=ground_truth_intact,
        budget=budget.to_dict(),
    )
    report.violations = budget.violations(report)
    return report


def _run_episode(
    plan: MutationPlan,
    boot,
    check,
    leak_packets: list,
    benign_packets: list,
    *,
    rounds: int,
    seed: int,
    epsilon: float,
    gateway_config: GatewayConfig,
    defender_config: DefenderConfig,
    obs: Observability,
) -> tuple[dict, bool]:
    """One family's attacker-vs-defender episode; ``(episode, gt_intact)``."""
    name = plan.family.value
    defender = DefenderLoop(boot, defender_config, obs=obs)
    gateway = ScreeningGateway(
        boot, gateway_config, set_version=1, run_id=f"arena-{name}"
    )

    n_leak = len(leak_packets)
    n_benign = len(benign_packets)
    flagged, pre_fp, __ = _screen_round(
        gateway, leak_packets, benign_packets,
        seed=seed, family=name, round_no=0,
    )
    pre_recall = flagged / n_leak if n_leak else 1.0
    ledger: list[dict] = []
    intact = True

    for round_no in range(1, rounds + 1):
        mutants = plan.mutate_all(leak_packets, round_no)
        detected = sum(1 for mutant in mutants if check.is_sensitive(mutant))
        intact = intact and detected == len(mutants)
        reloads = []
        if defender.channel.latest_version > gateway.set_version:
            reloads.append(ReloadEvent(tick=0.0, envelope=defender.latest_envelope))
        with obs.span(
            "arena_round", track="arena", family=name, round=round_no
        ):
            flagged, fp, misses = _screen_round(
                gateway, mutants, benign_packets,
                seed=seed, family=name, round_no=round_no, reloads=reloads,
            )
            defense = defender.observe_misses(misses, round_no)
        recall = flagged / n_leak if n_leak else 1.0
        obs.inc("arena_rounds")
        obs.inc("arena_misses", len(misses))
        ledger.append(
            {
                "round": round_no,
                "recall": round(recall, 6),
                "evasion_rate": round(1.0 - recall, 6),
                "fp_rate": round(fp / n_benign if n_benign else 0.0, 6),
                "misses": len(misses),
                "ground_truth_detected": detected,
                "set_version_screened": gateway.set_version,
                "miss_clusters": defense.miss_clusters,
                "signatures_regenerated": defense.regenerated,
                "set_size": defense.set_size,
                "published_version": defense.published_version,
                "pair_cache_size": defense.pair_cache_size,
                "pair_cache_evictions": defense.pair_cache_evictions,
            }
        )

    recovery, half_life, recovered = _recovery_metrics(pre_recall, ledger, epsilon)
    episode = {
        "family": name,
        "pre_attack_recall": round(pre_recall, 6),
        "pre_attack_fp_rate": round(pre_fp / n_benign if n_benign else 0.0, 6),
        "final_recall": ledger[-1]["recall"] if ledger else round(pre_recall, 6),
        "peak_evasion": max((row["evasion_rate"] for row in ledger), default=0.0),
        "rounds_to_recovery": recovery,
        "evasion_half_life": half_life,
        "recovered": recovered,
        "republishes": sum(
            1 for row in ledger if row["published_version"] is not None
        ),
        "final_set_version": gateway.set_version,
        "final_set_size": ledger[-1]["set_size"] if ledger else len(boot),
        "reloads_applied": gateway.telemetry.counters.get("reloads_applied", 0),
        "ground_truth_intact": intact,
        "pair_cache": {
            "bound": defender_config.max_cached_pairs,
            "final_size": ledger[-1]["pair_cache_size"] if ledger else 0,
            "evictions": ledger[-1]["pair_cache_evictions"] if ledger else 0,
        },
        "rounds": ledger,
    }
    return episode, intact
