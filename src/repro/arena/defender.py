"""The defender: misses stream into clustering, signatures republish.

One :class:`DefenderLoop` owns the regeneration side of the arena:

1. screening misses (flagged ``False`` by the gateway but sensitive per
   payload-check ground truth) are ingested into a
   :class:`~repro.core.streaming.StreamingClusterer` with ``compact_every=1``
   — every round ends with an exactly-compacted partition over *all*
   misses seen so far, served by the bounded LRU pair cache;
2. clusters with enough mass regenerate candidate signatures at the same
   absolute cut height the clusterer blocks at (mirroring
   :class:`~repro.core.incremental.IncrementalSignatureSet`'s
   residue-then-merge policy);
3. candidates union-merge with the base set under subsumption dedup —
   the base set guarantees pre-attack coverage never regresses — and the
   merged set republishes through :class:`SignatureChannel` **only when
   it actually changed**, so ``set_version`` advances monotonically and
   the gateway's never-regress reload contract holds for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.distribution import SignatureChannel
from repro.core.streaming import StreamingClusterer, StreamingConfig
from repro.distance.blocking import BlockingConfig
from repro.distance.engine import DistanceEngine
from repro.http.packet import HttpPacket
from repro.obs import NULL_OBS, Observability
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.generator import GeneratorConfig, SignatureGenerator, deduplicate
from repro.signatures.store import SignatureEnvelope, SignatureStore


@dataclass(frozen=True, slots=True)
class DefenderConfig:
    """Policy for one defender loop.

    :param threshold: absolute linkage height for both blocking and the
        generation cut (they must agree — see ``GeneratorConfig.cut_height``).
    :param min_cluster_size: miss clusters below this yield no signature.
    :param attach_exemplars: attach probe cap per candidate cluster.
    :param max_cached_pairs: LRU bound on the clusterer's pair cache so
        defender memory stays flat over unbounded arena rounds.
    :param workers: distance engine worker count.
    """

    threshold: float = 1.2
    min_cluster_size: int = 2
    attach_exemplars: int = 8
    max_cached_pairs: int | None = 50_000
    workers: int = 1


@dataclass(frozen=True, slots=True)
class DefenderRound:
    """What one :meth:`DefenderLoop.observe_misses` call did.

    :param published_version: the freshly published ``set_version``, or
        ``None`` when the merged set was unchanged (nothing republished).
    """

    round_no: int
    misses_ingested: int
    miss_clusters: int
    regenerated: int
    set_size: int
    published_version: int | None
    pair_cache_size: int
    pair_cache_evictions: int


class DefenderLoop:
    """Self-healing signature maintenance fed by screening misses.

    :param base_signatures: the pre-attack set; published as version 1 on
        construction so the serving side can boot from the channel.
    :param config: defender policy.
    :param metric: pair metric for miss clustering (defaults to the
        paper's packet distance).
    :param channel: distribution channel to republish through; a fresh
        perfect channel by default.
    :param obs: observability bundle (``arena_defend`` spans,
        ``arena_*`` counters).
    """

    def __init__(
        self,
        base_signatures: Sequence[ConjunctionSignature],
        config: DefenderConfig | None = None,
        *,
        metric=None,
        channel: SignatureChannel | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or DefenderConfig()
        self.channel = channel or SignatureChannel()
        self.obs = obs or NULL_OBS
        self.base = list(base_signatures)
        engine = DistanceEngine(metric, workers=self.config.workers)
        self.clusterer = StreamingClusterer(
            config=StreamingConfig(
                blocking=BlockingConfig(threshold=self.config.threshold),
                attach_exemplars=self.config.attach_exemplars,
                compact_every=1,
                max_cached_pairs=self.config.max_cached_pairs,
            ),
            engine=engine,
            obs=self.obs,
        )
        self.generator = SignatureGenerator(
            GeneratorConfig(
                cut_height=self.config.threshold,
                min_cluster_size=self.config.min_cluster_size,
            )
        )
        self.signatures: list[ConjunctionSignature] = list(self.base)
        self._published_doc = SignatureStore.dumps(self.signatures)
        self.channel.publish(self.signatures)

    @property
    def latest_envelope(self) -> SignatureEnvelope:
        """The newest published envelope (what the gateway should load)."""
        return self.channel.envelope(self.channel.latest_version)

    def miss_clusters(self) -> list[list[HttpPacket]]:
        """Current miss clusters with enough mass to regenerate from."""
        items = self.clusterer.items
        return [
            [items[index] for index in members]
            for members in self.clusterer.partition()
            if len(members) >= self.config.min_cluster_size
        ]

    def observe_misses(
        self, misses: Sequence[HttpPacket], round_no: int = 0
    ) -> DefenderRound:
        """One healing round: ingest misses, regenerate, maybe republish.

        Regeneration always runs over the *cumulative* miss population —
        clusters grow across rounds until they carry enough invariant
        structure to anchor a signature, exactly like slow-cadence
        consolidation in the incremental maintainer.
        """
        misses = list(misses)
        with self.obs.span(
            "arena_defend", track="arena", round=round_no, misses=len(misses)
        ):
            if misses:
                self.clusterer.ingest(misses)
            clusters = self.miss_clusters()
            regenerated = self.generator.from_clusters(clusters)
            merged = deduplicate(self.base + regenerated)
            document = SignatureStore.dumps(merged)
            published_version: int | None = None
            if document != self._published_doc:
                self.signatures = merged
                self._published_doc = document
                published_version = self.channel.publish(merged).set_version
                self.obs.inc("arena_republishes")
        self.obs.inc("arena_misses_ingested", len(misses))
        self.obs.inc("arena_signatures_regenerated", len(regenerated))
        return DefenderRound(
            round_no=round_no,
            misses_ingested=len(misses),
            miss_clusters=len(clusters),
            regenerated=len(regenerated),
            set_size=len(self.signatures),
            published_version=published_version,
            pair_cache_size=self.clusterer.stream.cached_pairs,
            pair_cache_evictions=self.clusterer.stream.evictions,
        )
