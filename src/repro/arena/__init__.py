"""Adversarial evasion arena: seeded attackers vs a self-healing defender.

The paper generates conjunction signatures once; this package closes the
loop it leaves open.  :mod:`repro.arena.mutations` is the attacker — a
taxonomy of seeded, pure packet mutations that re-shape leaking traffic
to dodge the deployed signature set while (by construction) keeping the
leak detectable by payload-check ground truth.  :mod:`repro.arena.defender`
is the defense — screening misses feed a :class:`StreamingClusterer`,
regenerated signatures merge with the base set and hot-republish through
:class:`SignatureChannel` into the :class:`ScreeningGateway`.
:mod:`repro.arena.harness` drives attacker-vs-defender rounds per mutation
family and scores recovery (``repro arena``, ``BENCH_arena.json``).
"""

from repro.arena.defender import DefenderConfig, DefenderLoop, DefenderRound
from repro.arena.harness import ArenaBudget, ArenaReport, run_arena
from repro.arena.mutations import (
    MutationFamily,
    MutationPlan,
    packet_fingerprint,
    plans_for,
    tenant_pool,
)

__all__ = [
    "ArenaBudget",
    "ArenaReport",
    "DefenderConfig",
    "DefenderLoop",
    "DefenderRound",
    "MutationFamily",
    "MutationPlan",
    "packet_fingerprint",
    "plans_for",
    "run_arena",
    "tenant_pool",
]
