"""The attacker suite: seeded, pure mutations over leaking traffic.

Each :class:`MutationFamily` models one way a leaking SDK could re-shape
its traffic to dodge a deployed conjunction-signature set.  A
:class:`MutationPlan` binds a family to a seed and to the ground-truth
contract, and :meth:`MutationPlan.mutate` is a **pure function of
``(seed, round, packet)``**: the per-packet RNG is derived from the plan
seed, the round number and a fingerprint of the original packet, so the
same inputs always produce the same mutant, independent of call order —
which is what makes arena runs byte-identically replayable.

The one invariant every family preserves: the packet must stay inside
the payload check's suspicious group.  The attacker is exfiltrating an
identifier the server side needs to correlate on, so it must arrive
intact in *some* spelling the scanner knows.  Concretely:

- ``TOKEN_SPLIT`` never splits a field that contains a preserved
  spelling (spellings contain no ``&``/``=``-prefix, so a spelling
  never spans fields);
- ``ENCODING_CHURN`` only rotates a leak value *within* its
  interchangeable spelling group (see ``PayloadCheck.churn_groups``) —
  every member is in the scanner's table;
- the remaining families never rewrite existing field content at all.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.http.message import HttpRequest
from repro.http.packet import Destination, HttpPacket
from repro.net.ipv4 import IPv4Address
from repro.simulation.rng import derive_rng

_HEX = "0123456789abcdef"


class MutationFamily(enum.Enum):
    """One adversarial re-shaping strategy."""

    TOKEN_SPLIT = "token_split"
    HEADER_REORDER = "header_reorder"
    PADDING_CHAFF = "padding_chaff"
    ENCODING_CHURN = "encoding_churn"
    DEST_ROTATION = "dest_rotation"


def tenant_pool(domain: str, n_hosts: int = 3) -> tuple[tuple[str, str], ...]:
    """The rotation pool of one tenant (the module behind ``domain``).

    A leaking SDK rotates within infrastructure *it* controls, so the
    pool is derived deterministically from the tenant's registered
    domain: distinct apex domains (defeating domain-scoped signatures)
    on adjacent IPs in a tenant-specific 198.18/16 subnet.  Different
    tenants get disjoint pools, which keeps rotated traffic clusterable
    per tenant — the property the defender's healing relies on.
    """
    label = "".join(
        c for c in domain.partition(".")[0].lower() if c.isalnum() or c == "-"
    ) or "tenant"
    subnet = hashlib.blake2b(domain.encode("utf-8"), digest_size=1).digest()[0]
    apexes = (f"{label}-edge.net", f"{label}-mirror.org", f"{label}-cache.com")
    return tuple(
        (f"r{i}.{apex}", f"198.18.{subnet}.{10 + i}")
        for i, apex in enumerate(apexes[:n_hosts])
    )


def packet_fingerprint(packet: HttpPacket) -> str:
    """Stable identity of a packet's content + provenance + destination.

    Keyed into the per-packet RNG so mutation randomness is a function of
    the packet itself, not of iteration order.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(packet.wire_bytes())
    digest.update(packet.app_id.encode("utf-8"))
    digest.update(str(packet.destination).encode("utf-8"))
    return digest.hexdigest()


def _split_query(target: str) -> tuple[str, list[str]]:
    """``target`` -> (path, raw ``&``-separated field chunks).

    Chunks are kept as raw wire text (never decoded/re-encoded) so
    untouched fields keep their exact spelling.
    """
    path, sep, raw_query = target.partition("?")
    chunks = [c for c in raw_query.split("&") if c] if sep else []
    return path, chunks


def _join_query(path: str, chunks: list[str]) -> str:
    return path + ("?" + "&".join(chunks) if chunks else "")


def _hex_junk(rng: Random, length: int) -> str:
    return "".join(rng.choice(_HEX) for __ in range(length))


def _rewrite(
    packet: HttpPacket,
    *,
    target: str | None = None,
    headers: list[tuple[str, str]] | None = None,
    body: bytes | None = None,
    destination: Destination | None = None,
    family: MutationFamily,
    round_no: int,
) -> HttpPacket:
    """A copy of ``packet`` with some request fields replaced + arena tags."""
    request = HttpRequest(
        method=packet.request.method,
        target=packet.request.target if target is None else target,
        version=packet.request.version,
        headers=list(packet.request.headers) if headers is None else headers,
        body=packet.request.body if body is None else body,
    )
    return HttpPacket(
        destination=packet.destination if destination is None else destination,
        request=request,
        app_id=packet.app_id,
        timestamp=packet.timestamp,
        meta={**packet.meta, "arena_family": family.value, "arena_round": round_no},
    )


def _substitute(text: str, members: Sequence[str], target: str) -> str:
    """Replace every occurrence of any member with ``target``, one pass.

    A single left-to-right scan trying members longest-first: replaced
    output is never rescanned, so substitution cannot cascade (e.g. a
    base64 target containing a hex-shaped substring is left alone).
    """
    ordered = sorted(members, key=len, reverse=True)
    out: list[str] = []
    i = 0
    while i < len(text):
        hit = next((m for m in ordered if text.startswith(m, i)), None)
        if hit is not None:
            out.append(target)
            i += len(hit)
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


@dataclass(frozen=True, slots=True)
class MutationPlan:
    """One family bound to a seed and the ground-truth contract.

    :param family: the mutation strategy.
    :param seed: arena seed; all randomness derives from it.
    :param preserve: spellings that must survive intact
        (``PayloadCheck.spellings()``) — the fields carrying them are
        never split.
    :param churn_groups: interchangeable spelling groups
        (``PayloadCheck.churn_groups()``) for ``ENCODING_CHURN``.
    :param host_pool: ``(host, ip)`` pairs of the tenant's rotation pool
        for ``DEST_ROTATION``.
    """

    family: MutationFamily
    seed: int
    preserve: tuple[str, ...] = ()
    churn_groups: tuple[tuple[str, ...], ...] = ()
    host_pool: tuple[tuple[str, str], ...] = ()

    def _rng(self, packet: HttpPacket, round_no: int) -> Random:
        return derive_rng(
            self.seed, "arena", self.family.value, str(round_no),
            packet_fingerprint(packet),
        )

    def mutate(self, packet: HttpPacket, round_no: int) -> HttpPacket:
        """The round-``round_no`` mutant of ``packet`` (pure, seeded).

        Mutations always apply to the *original* packet — round ``r``'s
        mutant is not built on round ``r-1``'s — so any
        ``(seed, round, packet)`` triple can be replayed in isolation.
        """
        rng = self._rng(packet, round_no)
        if self.family is MutationFamily.TOKEN_SPLIT:
            return self._token_split(packet, rng, round_no)
        if self.family is MutationFamily.HEADER_REORDER:
            return self._header_reorder(packet, rng, round_no)
        if self.family is MutationFamily.PADDING_CHAFF:
            return self._padding_chaff(packet, rng, round_no)
        if self.family is MutationFamily.ENCODING_CHURN:
            return self._encoding_churn(packet, rng, round_no)
        if self.family is MutationFamily.DEST_ROTATION:
            return self._dest_rotation(packet, rng, round_no)
        raise ValueError(f"unknown mutation family {self.family!r}")

    def mutate_all(
        self, packets: Sequence[HttpPacket], round_no: int
    ) -> list[HttpPacket]:
        """Mutants for a whole round, in input order."""
        return [self.mutate(packet, round_no) for packet in packets]

    # -- families ------------------------------------------------------------

    def _protected(self, chunk: str) -> bool:
        return any(spelling in chunk for spelling in self.preserve)

    def _token_split(
        self, packet: HttpPacket, rng: Random, round_no: int
    ) -> HttpPacket:
        """Split long field values across two fields (leak fields exempt)."""
        path, chunks = _split_query(packet.request.target)
        out: list[str] = []
        for chunk in chunks:
            key, eq, value = chunk.partition("=")
            if eq and len(value) >= 8 and not self._protected(chunk):
                cut = rng.randrange(2, len(value) - 1)
                out.append(f"{key}={value[:cut]}")
                out.append(f"{key}_p{rng.randrange(2, 10)}={value[cut:]}")
            else:
                out.append(chunk)
        return _rewrite(
            packet, target=_join_query(path, out),
            family=self.family, round_no=round_no,
        )

    def _header_reorder(
        self, packet: HttpPacket, rng: Random, round_no: int
    ) -> HttpPacket:
        """Shuffle header order and query field order (content unchanged)."""
        headers = list(packet.request.headers)
        rng.shuffle(headers)
        path, chunks = _split_query(packet.request.target)
        rng.shuffle(chunks)
        return _rewrite(
            packet, target=_join_query(path, chunks), headers=headers,
            family=self.family, round_no=round_no,
        )

    def _padding_chaff(
        self, packet: HttpPacket, rng: Random, round_no: int
    ) -> HttpPacket:
        """Inject junk fields between real ones plus a junk header.

        Chaff values are short random hex (6–13 chars) — far below the
        scanner's shortest spelling, so chaff can never fake a leak.
        """
        path, chunks = _split_query(packet.request.target)
        for __ in range(rng.randrange(2, 6)):
            chaff = f"z{_hex_junk(rng, 4)}={_hex_junk(rng, rng.randrange(6, 14))}"
            chunks.insert(rng.randrange(len(chunks) + 1), chaff)
        headers = list(packet.request.headers)
        headers.append(("X-Padding", _hex_junk(rng, 8)))
        return _rewrite(
            packet, target=_join_query(path, chunks), headers=headers,
            family=self.family, round_no=round_no,
        )

    def _encoding_churn(
        self, packet: HttpPacket, rng: Random, round_no: int
    ) -> HttpPacket:
        """Re-spell each leak value within its detectable spelling group.

        The group member is picked by ``(round + per-packet offset) %
        len(group)``, so one round mixes spellings across packets and
        every packet cycles spellings across rounds.
        """
        target = packet.request.target
        headers = list(packet.request.headers)
        body_text = packet.request.body.decode("latin-1")
        for group in self.churn_groups:
            pick = group[(round_no + rng.randrange(len(group))) % len(group)]
            target = _substitute(target, group, pick)
            headers = [
                (name, _substitute(value, group, pick)) for name, value in headers
            ]
            body_text = _substitute(body_text, group, pick)
        return _rewrite(
            packet, target=target, headers=headers,
            body=body_text.encode("latin-1"),
            family=self.family, round_no=round_no,
        )

    def _dest_rotation(
        self, packet: HttpPacket, rng: Random, round_no: int
    ) -> HttpPacket:
        """Rotate the destination within the tenant's host pool.

        The pool defaults to :func:`tenant_pool` of the packet's own
        registered domain; an explicit ``host_pool`` on the plan (e.g. a
        shared CDN) overrides it for every tenant.
        """
        pool = self.host_pool or tenant_pool(packet.destination.registered_domain)
        host, ip = pool[(round_no + rng.randrange(len(pool))) % len(pool)]
        headers = [
            (name, host if name.lower() == "host" else value)
            for name, value in packet.request.headers
        ]
        destination = Destination(IPv4Address.parse(ip), packet.port, host)
        return _rewrite(
            packet, headers=headers, destination=destination,
            family=self.family, round_no=round_no,
        )


def plans_for(
    check,
    *,
    seed: int,
    families: Sequence[MutationFamily] | None = None,
    host_pool: tuple[tuple[str, str], ...] = (),
) -> list[MutationPlan]:
    """One :class:`MutationPlan` per family, wired to ground truth.

    :param check: the corpus :class:`~repro.sensitive.payload_check.PayloadCheck`
        — supplies the preserve set and churn groups.
    """
    chosen = list(families) if families is not None else list(MutationFamily)
    preserve = check.spellings()
    churn = check.churn_groups()
    return [
        MutationPlan(
            family=family, seed=seed, preserve=preserve,
            churn_groups=churn, host_pool=host_pool,
        )
        for family in chosen
    ]
