#!/usr/bin/env python3
"""CI bench-drift gate: validate every committed ``BENCH_*.json``.

Run from the repository root (the lint job does)::

    python scripts/check_bench_drift.py [root]

Exit status is nonzero when any committed bench report is missing a
required field, fails its own truth-flags (``ok``/``identical``), still
carries budget violations, or when no reports are found at all.

The validation logic lives in ``src/repro/eval/benchcheck.py``; it is
loaded straight from that file path — not via ``import repro`` — so
this script runs in the lint environment, which installs ruff and
nothing else (the ``repro`` package itself needs numpy at import time).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path


def load_benchcheck(repo_root: Path):
    module_path = repo_root / "src" / "repro" / "eval" / "benchcheck.py"
    spec = importlib.util.spec_from_file_location("benchcheck", module_path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot load {module_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path.cwd()
    benchcheck = load_benchcheck(root)
    results = benchcheck.check_tree(root)
    if not results:
        print(f"no BENCH_*.json reports found under {root}", file=sys.stderr)
        return 1
    failed = False
    for name, problems in results.items():
        if problems:
            failed = True
            print(f"{name}: DRIFT")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
