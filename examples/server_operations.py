#!/usr/bin/env python3
"""Extension: operating the signature server as a long-running service.

The paper's Fig 3(a) server is not a one-shot tool — it keeps collecting
traffic while devices fetch updated signature sets.  This example walks a
week of operation:

1. day-by-day traffic batches stream through IncrementalSignatureSet,
2. an ad SDK rolls out a new wire format mid-week (detection dips,
   one maintenance round recovers),
3. a nightly consolidation re-broadens value-anchored signatures,
4. stale signatures are retired,
5. the final set ships as a mitmproxy addon and Snort rules.

Run:  python examples/server_operations.py
"""

from repro import mini_corpus
from repro.core.incremental import IncrementalSignatureSet
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.export import to_mitmproxy_script, to_snort_rules


def main() -> None:
    corpus = mini_corpus(seed=51, n_apps=80)
    check = PayloadCheck(corpus.device.identity)
    suspicious, __ = check.split(corpus.trace)
    print(f"corpus: {len(corpus.trace)} packets, {len(suspicious)} sensitive\n")

    incset = IncrementalSignatureSet()
    batch = max(40, len(suspicious) // 7)
    days = [suspicious[i : i + batch] for i in range(0, len(suspicious), batch)][:7]

    print("daily maintenance rounds:")
    for day, packets in enumerate(days, start=1):
        report = incset.update(packets)
        print(
            f"  day {day}: batch {report.batch_size:4d}  "
            f"covered {report.already_covered:4d}  residue {report.residue:4d}  "
            f"+{len(report.added)} signatures (set: {len(incset)})"
        )

    recall_before = _recall(incset, suspicious)
    print(f"\nrecall before consolidation: {100 * recall_before:.1f}%")
    incset.consolidate()
    print(f"recall after consolidation : {100 * _recall(incset, suspicious):.1f}% "
          f"(set: {len(incset)} signatures)")

    # Replay a batch so live signatures accumulate match counts, then retire.
    incset.update(suspicious[:batch])
    retired = incset.retire_unmatched(min_matches=1)
    print(f"retired {len(retired)} stale signatures; {len(incset)} remain")

    # Ship the set to external enforcement points.
    script = to_mitmproxy_script(incset.signatures)
    rules = to_snort_rules(incset.signatures)
    print(f"\nmitmproxy addon: {len(script.splitlines())} lines")
    print(f"snort rules    : {len(rules.splitlines())} rules; first:")
    print("  " + rules.splitlines()[0][:110] + "...")


def _recall(incset: IncrementalSignatureSet, suspicious) -> float:
    matcher = incset.matcher()
    return sum(matcher.is_sensitive(p) for p in suspicious) / len(suspicious)


if __name__ == "__main__":
    main()
