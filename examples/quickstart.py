#!/usr/bin/env python3
"""Quickstart: the full paper pipeline in fifty lines.

Builds a small synthetic corpus (a scaled-down version of the paper's
1,188-app dataset), runs the payload check, clusters a sample of the
sensitive packets, generates conjunction signatures, and evaluates them
against the entire dataset with the paper's TP/FN/FP equations.

Run:  python examples/quickstart.py
"""

from repro import DetectionPipeline, mini_corpus

def main() -> None:
    print("Building a 120-app synthetic corpus (seed 7)...")
    corpus = mini_corpus(seed=7, n_apps=120)
    check = corpus.payload_check()
    print(f"  {corpus.n_apps} apps, {len(corpus.trace)} HTTP packets captured")
    print(f"  device identity: IMEI={corpus.device.identity.imei} "
          f"ANDROID_ID={corpus.device.identity.android_id} "
          f"carrier={corpus.device.identity.carrier}")

    pipeline = DetectionPipeline(corpus.trace, check)
    print(f"  payload check: {pipeline.n_suspicious} sensitive / "
          f"{pipeline.n_normal} normal packets")

    print("\nGenerating signatures from a sample of 80 sensitive packets...")
    result = pipeline.run(n_sample=80, seed=1)
    print(f"  {len(result.signatures)} conjunction signatures:")
    for signature in result.signatures:
        print(f"    {signature.describe()}")

    m = result.metrics
    print("\nDetection over the full dataset (paper Section V-B equations):")
    print(f"  true positives : {m.tp_percent:5.1f}%   (paper reaches 94% at N=500)")
    print(f"  false negatives: {m.fn_percent:5.1f}%   (paper: 5% at N=500)")
    print(f"  false positives: {m.fp_percent:5.2f}%   (paper: <= 2.3%)")


if __name__ == "__main__":
    main()
