#!/usr/bin/env python3
"""The device-side information flow control app (paper Fig 3b), end to end.

Simulates the full deployment loop:

1. a collection server ingests one corpus and publishes signatures,
2. a user's device fetches them into the flow-control app,
3. live traffic is screened; the user answers prompts, and their
   per-application decisions persist as policies.

Run:  python examples/device_flow_control.py
"""

from repro import FlowControlApp, PolicyAction, SignatureServer, mini_corpus
from repro.sensitive.payload_check import PayloadCheck


def main() -> None:
    # ---- server side -------------------------------------------------------
    corpus = mini_corpus(seed=33, n_apps=100)
    check = PayloadCheck(corpus.device.identity)
    server = SignatureServer(check)
    n_suspicious, n_normal = server.ingest(corpus.trace)
    print(f"server: ingested {n_suspicious} suspicious / {n_normal} normal packets")
    generation = server.generate(n_sample=100, seed=3)
    published = server.publish(generation.signatures)
    print(f"server: published {len(generation.signatures)} signatures "
          f"({len(published)} bytes of JSON)\n")

    # ---- device side --------------------------------------------------------
    # The user's prompt behaviour: deny ad networks, allow everything else.
    def user_prompt(packet, signature) -> bool:
        domain = packet.destination.registered_domain
        allow = not domain.startswith(("ad", "doubleclick"))
        print(f"  [prompt] {packet.app_id} -> {domain} "
              f"(signature: {signature.describe()[:60]}...) "
              f"user says {'ALLOW' if allow else 'DENY'}")
        return allow

    device_app = FlowControlApp.fetch(published, prompt_handler=user_prompt)

    # Screen a slice of live traffic.
    print("device: screening live traffic (first 3 prompts shown)...")
    prompts_shown = 0
    for packet in corpus.trace:
        flagged_before = device_app.prompt_count()
        device_app.screen(packet)
        if device_app.prompt_count() > flagged_before:
            prompts_shown += 1
            if prompts_shown == 3:
                break

    # The user gets tired of prompts for one noisy app and blocks it outright.
    noisy_app = device_app.flagged()[-1].packet.app_id
    device_app.policies.set_rule(noisy_app, PolicyAction.BLOCK)
    print(f"\ndevice: user sets a BLOCK rule for {noisy_app}")

    remaining = [p for p in corpus.trace if p.app_id == noisy_app]
    for packet in remaining:
        device_app.screen(packet)

    flagged = device_app.flagged()
    blocked = device_app.blocked()
    print("\nsession summary:")
    print(f"  decisions recorded : {len(device_app.history)}")
    print(f"  transmissions flagged: {len(flagged)}")
    print(f"  transmissions blocked: {len(blocked)}")
    print(f"  prompts raised      : {device_app.prompt_count()}")
    print("\nBlocked examples:")
    for decision in blocked[:5]:
        print(f"  {decision.packet.app_id} -> {decision.packet.host} "
              f"[{decision.action.value}]")


if __name__ == "__main__":
    main()
