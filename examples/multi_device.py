#!/usr/bin/env python3
"""Extension: multi-device training and cross-device generalization.

The paper's signatures are generated from one device's traffic, so the
device's own (hashed) identifiers become invariant tokens — great for that
device, useless for anyone else's.  Training on the union of several
devices' suspicious traffic removes the values from the invariant set,
leaving module *structure*: endpoints, parameter names, even the IMEI's
shared TAC prefix.  Those signatures transfer to unseen handsets.

This example quantifies both regimes, and finishes with the probabilistic
matcher (the paper's future-work idea) recovering extra recall.

Run:  python examples/multi_device.py
"""

from repro import ProbabilisticMatcher, SignatureMatcher, mini_corpus
from repro.clustering.linkage import agglomerate
from repro.dataset.split import sample_packets
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.generator import SignatureGenerator


def suspicious_of(corpus):
    return PayloadCheck(corpus.device.identity).split(corpus.trace)[0]


def generate(samples):
    matrix = distance_matrix(samples, PacketDistance.paper())
    return SignatureGenerator().from_dendrogram(agglomerate(matrix), samples)


def evaluate(matcher, corpus) -> tuple[float, float]:
    check = PayloadCheck(corpus.device.identity)
    sensitive = [p for p in corpus.trace if check.is_sensitive(p)]
    normal = [p for p in corpus.trace if not check.is_sensitive(p)]
    recall = sum(matcher.is_sensitive(p) for p in sensitive) / len(sensitive)
    fp = sum(matcher.is_sensitive(p) for p in normal) / len(normal)
    return recall, fp


def main() -> None:
    print("Building three device corpora (A, B train; C evaluates)...")
    corpus_a = mini_corpus(seed=41, n_apps=60)
    corpus_b = mini_corpus(seed=43, n_apps=60)
    corpus_c = mini_corpus(seed=45, n_apps=60)

    # -- regime 1: single-device training (the paper's setup) ----------------
    single = generate(sample_packets(suspicious_of(corpus_a), 100, seed=0))
    recall_own, fp_own = evaluate(SignatureMatcher(single), corpus_a)
    recall_xfer, fp_xfer = evaluate(SignatureMatcher(single), corpus_c)
    print("\nsingle-device signatures (trained on A):")
    print(f"  on device A (own traffic) : recall {100 * recall_own:5.1f}%  FP {100 * fp_own:.2f}%")
    print(f"  on device C (unseen)      : recall {100 * recall_xfer:5.1f}%  FP {100 * fp_xfer:.2f}%")
    print("  -> identifier values became invariant tokens; they don't transfer.")

    # -- regime 2: multi-device training ---------------------------------------
    combined = sample_packets(suspicious_of(corpus_a), 80, seed=0) + sample_packets(
        suspicious_of(corpus_b), 80, seed=0
    )
    multi = generate(combined)
    recall_multi, fp_multi = evaluate(SignatureMatcher(multi), corpus_c)
    print("\nmulti-device signatures (trained on A+B):")
    print(f"  on device C (unseen)      : recall {100 * recall_multi:5.1f}%  FP {100 * fp_multi:.2f}%")
    print("  sample structural tokens:")
    for signature in multi[:6]:
        print(f"    {signature.describe()}")

    # -- extension: probabilistic matching ---------------------------------------
    print("\nprobabilistic matcher on device C (threshold sweep):")
    for threshold in (1.0, 0.8, 0.6):
        matcher = ProbabilisticMatcher(multi, threshold=threshold)
        recall, fp = evaluate(matcher, corpus_c)
        print(f"  threshold {threshold:.1f}: recall {100 * recall:5.1f}%  FP {100 * fp:.2f}%")


if __name__ == "__main__":
    main()
