#!/usr/bin/env python3
"""Advertisement-module forensics: who leaks what, where.

Reproduces the paper's Section III analysis on a synthetic corpus:
which destinations receive sensitive identifiers, which identifier types
travel hashed, and how applications' permission sets gate what their
embedded ad modules can harvest.

Run:  python examples/ad_forensics.py
"""

from collections import defaultdict

from repro import mini_corpus
from repro.android.permissions import READ_PHONE_STATE
from repro.dataset.stats import destination_table, fanout_summary, sensitive_table
from repro.eval.report import render_fig2, render_table2, render_table3


def main() -> None:
    corpus = mini_corpus(seed=21, n_apps=150)
    check = corpus.payload_check()
    scale = corpus.n_apps / 1188

    print(render_table2(destination_table(corpus.trace), top=20, scale=scale))
    print()
    print(render_table3(sensitive_table(corpus.trace, check), scale=scale))
    print()
    print(render_fig2(fanout_summary(corpus.trace)))

    # -- which module leaks which identifier, to which endpoint -------------
    print("\nLeak matrix (identifier kinds per destination domain):")
    leaks_by_domain: dict[str, set[str]] = defaultdict(set)
    for packet, findings in check.iter_findings(corpus.trace):
        for finding in findings:
            leaks_by_domain[packet.destination.registered_domain].add(finding.label)
    for domain in sorted(leaks_by_domain, key=lambda d: -len(leaks_by_domain[d]))[:12]:
        kinds = ", ".join(sorted(leaks_by_domain[domain]))
        print(f"  {domain:<22} {kinds}")

    # -- permission gating in action -----------------------------------------
    print("\nPermission gating: the same ad module in two apps:")
    admaker_apps = [a for a in corpus.apps if any(s.name == "admaker" for s in a.services)]
    with_phone = [a for a in admaker_apps if a.manifest.holds(READ_PHONE_STATE)]
    without = [a for a in admaker_apps if not a.manifest.holds(READ_PHONE_STATE)]
    for group, label in ((with_phone, "has READ_PHONE_STATE"), (without, "no READ_PHONE_STATE")):
        if not group:
            continue
        app = group[0]
        kinds: set[str] = set()
        for packet in corpus.trace:
            if packet.app_id == app.package and packet.meta.get("service") == "admaker":
                kinds |= check.leak_labels(packet)
        print(f"  {app.package:<28} ({label:<22}) leaks: {sorted(kinds) or ['nothing']}")


if __name__ == "__main__":
    main()
