#!/usr/bin/env python3
"""Reproduce Fig 4 (the paper's headline experiment) at a chosen scale.

Sweeps the signature-generation sample size N and reports TP/FN/FP over
the full dataset, exactly as Section V-B defines them.  At the default
scale (200 apps) this takes well under a minute; pass ``--full`` to run
the paper-scale 1,188-app corpus (several minutes).

Run:  python examples/fig4_sweep.py [--full] [--seed SEED]
"""

import argparse

from repro import build_corpus
from repro.eval.experiments import run_fig4_sweep, scaled_sweep
from repro.eval.report import render_fig4
from repro.sensitive.payload_check import PayloadCheck


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale corpus (1,188 apps)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_apps = 1188 if args.full else 200
    print(f"Building corpus: {n_apps} apps, seed {args.seed}...")
    corpus = build_corpus(n_apps=n_apps, seed=args.seed)
    check = PayloadCheck(corpus.device.identity)
    suspicious, __ = check.split(corpus.trace)
    print(f"  {len(corpus.trace)} packets, {len(suspicious)} sensitive")

    sizes = scaled_sweep(len(suspicious))
    print(f"  sweep sample sizes: {sizes}\n")
    points = run_fig4_sweep(corpus.trace, check, sizes, seed=args.seed)
    print(render_fig4(points))


if __name__ == "__main__":
    main()
